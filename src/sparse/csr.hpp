// Compressed Sparse Row matrices — the compute format (the paper uses
// cuSPARSE CSR SpMM, §6).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/coo.hpp"

namespace mggcn::sparse {

class Csr {
 public:
  Csr() = default;
  Csr(std::int64_t rows, std::int64_t cols, std::vector<std::int64_t> row_ptr,
      std::vector<std::uint32_t> col_idx, std::vector<float> values);

  /// Builds from COO via counting sort; duplicates are summed.
  static Csr from_coo(const Coo& coo);

  /// Identity matrix (used by tests and by the first-layer backward skip
  /// reasoning of §4.4).
  static Csr identity(std::int64_t n);

  [[nodiscard]] std::int64_t rows() const { return rows_; }
  [[nodiscard]] std::int64_t cols() const { return cols_; }
  [[nodiscard]] std::int64_t nnz() const {
    return static_cast<std::int64_t>(col_idx_.size());
  }

  [[nodiscard]] std::span<const std::int64_t> row_ptr() const {
    return row_ptr_;
  }
  [[nodiscard]] std::span<const std::uint32_t> col_idx() const {
    return col_idx_;
  }
  [[nodiscard]] std::span<const float> values() const { return values_; }
  [[nodiscard]] std::span<float> values_mutable() {
    return values_;
  }

  [[nodiscard]] std::int64_t row_nnz(std::int64_t r) const {
    return row_ptr_[static_cast<std::size_t>(r + 1)] -
           row_ptr_[static_cast<std::size_t>(r)];
  }

  /// A^T, via counting sort over columns.
  [[nodiscard]] Csr transpose() const;

  /// Submatrix of rows [rb, re) x cols [cb, ce); indices are re-based to the
  /// tile's local coordinate system (eq. (15) of the paper).
  [[nodiscard]] Csr tile(std::int64_t rb, std::int64_t re, std::int64_t cb,
                         std::int64_t ce) const;

  /// Relabels vertices of a square matrix: entry (u, v) moves to
  /// (perm[u], perm[v]). This is §5.2's random-permutation load balancing.
  [[nodiscard]] Csr permute_symmetric(
      std::span<const std::uint32_t> perm) const;

  /// GCN normalization (eq. (2)): divides A(u, v) by the v-th column sum
  /// (the in-degree weight of v). Returns Â.
  [[nodiscard]] Csr normalize_gcn() const;

  /// Column sums (in-degrees for a 0/1 matrix).
  [[nodiscard]] std::vector<double> column_sums() const;

  /// Device-memory footprint of this matrix when shipped to a GPU as a
  /// partition tile: 32-bit local row offsets (tile nnz always fits),
  /// 4-byte column indices, 4-byte values. The host-side arrays use 64-bit
  /// offsets; the accounting charges what the device copy costs — this is
  /// what lets the hidden-208 Papers model squeeze into 8 GPUs (§6.5).
  [[nodiscard]] std::uint64_t footprint_bytes() const {
    return static_cast<std::uint64_t>(rows_ + 1) * 4 +
           static_cast<std::uint64_t>(nnz()) * 8;
  }

  [[nodiscard]] Coo to_coo() const;

  bool operator==(const Csr& other) const = default;

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<std::int64_t> row_ptr_ = {0};
  std::vector<std::uint32_t> col_idx_;
  std::vector<float> values_;
};

}  // namespace mggcn::sparse
