// Sparse-matrix x dense-matrix multiplication (the paper's dominant kernel,
// 60-94% of GCN runtime per Fig. 5) and its cost descriptor.
//
// Like the dense GeMMs, spmm() dispatches through the kernel-policy
// registry (dense/kernel_policy.hpp): `naive::spmm` is the reference loop,
// `tiled::spmm` the cache-blocked implementation, and `planned::spmm`
// (sparse/spmm_plan.hpp) the inspector-executor path that amortizes a
// one-time degree-binning pass across launches. All three fold the beta
// scale into the first-nonzero accumulation (no separate zeroing pass) and
// accumulate edges in CSR order per output element, so the policies agree
// bit-for-bit at beta == 0.
#pragma once

#include "dense/kernel_policy.hpp"
#include "dense/matrix.hpp"
#include "sim/cost_model.hpp"
#include "sparse/csr.hpp"

namespace mggcn::sparse {

namespace naive {
/// Reference row-at-a-time SpMM (the correctness oracle).
void spmm(const Csr& a, dense::ConstMatrixView b, dense::MatrixView c,
          float alpha, float beta);
}  // namespace naive

namespace tiled {
/// Cache-blocked SpMM: the dense dimension is tiled into column panels so
/// the gathered B-row slices and the C-row panel stay L1-resident, and
/// high-degree rows take an edge-batched path (4 gathers in flight plus
/// software prefetch of upcoming B rows) for memory-level parallelism.
void spmm(const Csr& a, dense::ConstMatrixView b, dense::MatrixView c,
          float alpha, float beta);
}  // namespace tiled

/// C = alpha * A * B + beta * C, with A in CSR (m x k), B (k x d), C (m x d).
/// Dispatches on the active dense::KernelPolicy.
void spmm(const Csr& a, dense::ConstMatrixView b, dense::MatrixView c,
          float alpha = 1.0f, float beta = 0.0f);

/// Per-policy SpMM entry point, for registering additional backends.
using SpmmFn = void (*)(const Csr&, dense::ConstMatrixView, dense::MatrixView,
                        float, float);
void register_spmm(dense::KernelPolicy policy, SpmmFn fn);

/// Cost of one SpMM launch. `src_rows` is the number of B rows the tile can
/// touch (the tile width): it bounds the gather working set, which is what
/// gives narrower tiles better cache reuse (the paper's super-linear
/// speedups, §6.4).
[[nodiscard]] sim::KernelCost spmm_cost(std::int64_t nnz,
                                        std::int64_t out_rows,
                                        std::int64_t src_rows, std::int64_t d);

/// Convenience overload from a concrete tile.
[[nodiscard]] sim::KernelCost spmm_cost(const Csr& a, std::int64_t d);

}  // namespace mggcn::sparse
