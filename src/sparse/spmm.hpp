// Sparse-matrix x dense-matrix multiplication (the paper's dominant kernel,
// 60-94% of GCN runtime per Fig. 5) and its cost descriptor.
#pragma once

#include "dense/matrix.hpp"
#include "sim/cost_model.hpp"
#include "sparse/csr.hpp"

namespace mggcn::sparse {

/// C = alpha * A * B + beta * C, with A in CSR (m x k), B (k x d), C (m x d).
void spmm(const Csr& a, dense::ConstMatrixView b, dense::MatrixView c,
          float alpha = 1.0f, float beta = 0.0f);

/// Cost of one SpMM launch. `src_rows` is the number of B rows the tile can
/// touch (the tile width): it bounds the gather working set, which is what
/// gives narrower tiles better cache reuse (the paper's super-linear
/// speedups, §6.4).
[[nodiscard]] sim::KernelCost spmm_cost(std::int64_t nnz,
                                        std::int64_t out_rows,
                                        std::int64_t src_rows, std::int64_t d);

/// Convenience overload from a concrete tile.
[[nodiscard]] sim::KernelCost spmm_cost(const Csr& a, std::int64_t d);

}  // namespace mggcn::sparse
