// Cache-blocked CSR SpMM (the `tiled` kernel policy). Kept in its own
// translation unit so it can be compiled at -O3 (see CMakeLists.txt) while
// the naive reference in spmm.cpp keeps the seed's default flags — the
// bench comparison between the two policies then measures exactly
// "optimized kernel vs. the code the repo shipped with".
#include <algorithm>

#include "sparse/spmm.hpp"
#include "util/error.hpp"

namespace mggcn::sparse::tiled {

namespace {

/// Column-panel width. A 512-float (2 KiB) panel keeps the C-row slice and
/// the in-flight gathered B slices L1-resident; wider feature dimensions
/// are split so each pass's working set stays cache sized. Typical GCN
/// dims (d <= 512) run as a single pass — panel splits re-walk the edge
/// list per panel, which only pays once a row no longer fits L1.
constexpr std::int64_t kPanelD = 512;

/// Rows at or above this degree take the edge-batched path.
constexpr std::int64_t kBatchDegree = 8;

/// Edges processed per batch (independent gather streams).
constexpr std::int64_t kEdgeBatch = 4;

/// How many edges ahead to prefetch the gathered B row.
constexpr std::int64_t kPrefetchDistance = 8;

/// Prefetches the head of the B-row slice that edge `e` (clamped to the
/// edge array) will gather, `kPrefetchDistance` edges before it is needed.
/// The edge array is contiguous across rows, so the prefetch stream runs
/// ahead through row boundaries.
inline void prefetch_edge(const std::uint32_t* __restrict col_idx,
                          const float* __restrict b, std::int64_t ldb,
                          std::int64_t j0, std::int64_t dw, std::int64_t e,
                          std::int64_t nnz) {
  if (e >= nnz) return;
  const float* row = b + static_cast<std::int64_t>(col_idx[e]) * ldb + j0;
  __builtin_prefetch(row, 0, 1);
  if (dw > 16) __builtin_prefetch(row + 16, 0, 1);
}

/// One row's worth of work restricted to the column panel [j0, j0 + dw).
/// Accumulates edges in CSR order per output element — the same per-element
/// operation sequence as the naive path, so results match bit-for-bit.
inline void row_panel(const std::int64_t* __restrict row_ptr,
                      const std::uint32_t* __restrict col_idx,
                      const float* __restrict values,
                      const float* __restrict b, std::int64_t ldb,
                      float* __restrict out, std::int64_t r, std::int64_t j0,
                      std::int64_t dw, float alpha, float beta,
                      std::int64_t nnz) {
  std::int64_t e = row_ptr[r];
  const std::int64_t e_end = row_ptr[r + 1];
  if (beta == 0.0f) {
    if (e == e_end) {
      for (std::int64_t j = 0; j < dw; ++j) out[j] = 0.0f;
      return;
    }
    // Initialize from the first nonzero: the beta scale is fused into the
    // first accumulation, no separate zeroing pass.
    const float w = alpha * values[e];
    const float* __restrict src = b + col_idx[e] * ldb + j0;
    for (std::int64_t j = 0; j < dw; ++j) out[j] = w * src[j];
    ++e;
  } else if (beta != 1.0f) {
    for (std::int64_t j = 0; j < dw; ++j) out[j] *= beta;
  }

  if (e_end - e >= kBatchDegree) {
    // Edge-batched path for high-degree rows: four gather streams in
    // flight and software prefetch of the rows kPrefetchDistance edges
    // ahead (across row boundaries), to overlap the random-access misses
    // the hardware prefetcher cannot predict. The per-element accumulation
    // order is unchanged.
    for (; e + kEdgeBatch <= e_end; e += kEdgeBatch) {
      for (std::int64_t q = 0; q < kEdgeBatch; ++q) {
        prefetch_edge(col_idx, b, ldb, j0, dw, e + kPrefetchDistance + q,
                      nnz);
      }
      const float w0 = alpha * values[e];
      const float w1 = alpha * values[e + 1];
      const float w2 = alpha * values[e + 2];
      const float w3 = alpha * values[e + 3];
      const float* __restrict s0 = b + col_idx[e] * ldb + j0;
      const float* __restrict s1 = b + col_idx[e + 1] * ldb + j0;
      const float* __restrict s2 = b + col_idx[e + 2] * ldb + j0;
      const float* __restrict s3 = b + col_idx[e + 3] * ldb + j0;
      for (std::int64_t j = 0; j < dw; ++j) {
        float v = out[j];
        v += w0 * s0[j];
        v += w1 * s1[j];
        v += w2 * s2[j];
        v += w3 * s3[j];
        out[j] = v;
      }
    }
  }
  for (; e < e_end; ++e) {
    prefetch_edge(col_idx, b, ldb, j0, dw, e + kPrefetchDistance, nnz);
    const float w = alpha * values[e];
    const float* __restrict src = b + col_idx[e] * ldb + j0;
    for (std::int64_t j = 0; j < dw; ++j) out[j] += w * src[j];
  }
}

}  // namespace

void spmm(const Csr& a, dense::ConstMatrixView b, dense::MatrixView c,
          float alpha, float beta) {
  MGGCN_CHECK_MSG(a.cols() == b.rows, "spmm inner dimensions must agree");
  MGGCN_CHECK_MSG(a.rows() == c.rows && b.cols == c.cols,
                  "spmm output shape mismatch");
  const std::int64_t d = b.cols;
  const std::int64_t rows = a.rows();
  const std::int64_t* row_ptr = a.row_ptr().data();
  const std::uint32_t* col_idx = a.col_idx().data();
  const float* values = a.values().data();

  const std::int64_t nnz = a.nnz();
  for (std::int64_t j0 = 0; j0 < d; j0 += kPanelD) {
    const std::int64_t dw = std::min(kPanelD, d - j0);
    for (std::int64_t r = 0; r < rows; ++r) {
      row_panel(row_ptr, col_idx, values, b.data, d, c.row(r) + j0, r, j0, dw,
                alpha, beta, nnz);
    }
  }
}

}  // namespace mggcn::sparse::tiled
