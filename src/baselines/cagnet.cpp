#include "baselines/cagnet.hpp"

namespace mggcn::baselines {

core::TrainConfig cagnet_config(core::TrainConfig base) {
  base.permute = false;  // CAGNET keeps the input vertex order
  base.overlap = false;  // synchronous broadcast-then-compute stages
  // CAGNET's 1D SUMMA broadcasts H and computes (A^T H) W — always
  // aggregate-first, so wide hidden layers broadcast and SpMM at d = 512
  // where §4.4 lets MG-GCN work at d(l+1). PyTorch autograd saves the
  // first layer's aggregation (no backward SpMM there).
  base.reorder_gemm_spmm = false;
  base.spmm_first_when_no_reorder = true;
  base.skip_first_backward_spmm = false;
  base.autograd_aggregation_reuse = true;
  base.reuse_buffers = false;             // PyTorch per-op allocation
  base.kernel_overhead_multiplier = 8.0;  // PyTorch dispatch per op
  base.spmm_traffic_factor = 1.3;         // transpose materialization etc.
  base.comm_efficiency = 0.7;             // NCCL 2.4 vs 2.11
  return base;
}

CagnetTrainer::CagnetTrainer(sim::Machine& machine,
                             const graph::Dataset& dataset,
                             core::TrainConfig base)
    : trainer_(machine, dataset, cagnet_config(std::move(base))) {}

}  // namespace mggcn::baselines
