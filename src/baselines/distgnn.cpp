#include "baselines/distgnn.hpp"

#include <algorithm>
#include <cmath>

#include "dense/kernels.hpp"
#include "sim/cost_model.hpp"
#include "sparse/spmm.hpp"
#include "util/error.hpp"

namespace mggcn::baselines {

double DistGnnModel::replication_factor(int sockets) {
  MGGCN_CHECK(sockets >= 1);
  // Libra vertex cuts of power-law graphs replicate sub-linearly in the
  // part count; hubs are split across most parts.
  return 1.0 + 0.55 * std::pow(static_cast<double>(sockets) - 1.0, 0.6);
}

double DistGnnModel::epoch_seconds(const graph::DatasetSpec& spec,
                                   const std::vector<std::int64_t>& dims,
                                   int sockets) const {
  MGGCN_CHECK(dims.size() >= 2 && sockets >= 1);
  const double s = sockets;
  const double n_local = static_cast<double>(spec.n) / s;
  const double nnz_local = static_cast<double>(spec.m) / s;
  const auto layers = dims.size() - 1;

  double kernel_seconds = 0.0;
  for (std::size_t l = 0; l < layers; ++l) {
    const auto d_in = dims[l];
    const auto d_out = dims[l + 1];

    // Forward: GeMM + SpMM on d_out; backward: SpMM on d_out + two GeMMs.
    // DistGNN has no first-layer skip (2 SpMMs per layer except one saved
    // GeMM at the input).
    sim::KernelCost spmm = sparse::spmm_cost(
        static_cast<std::int64_t>(nnz_local),
        static_cast<std::int64_t>(n_local),
        static_cast<std::int64_t>(n_local), d_out);
    sim::KernelCost gemm = dense::gemm_cost(
        static_cast<std::int64_t>(n_local), d_out, d_in);

    kernel_seconds += 2.0 * sim::CostModel::seconds(spmm, machine_.device);
    kernel_seconds += 3.0 * sim::CostModel::seconds(gemm, machine_.device);
  }
  kernel_seconds /= kKernelEfficiency;

  // Host-side aggregation framework overhead, forward + backward.
  const double overhead_seconds = 2.0 * kPerEdgeOverhead * nnz_local;

  // Communication: replicated boundary features synchronized per layer in
  // both passes over the HDR fabric.
  double comm_seconds = 0.0;
  if (sockets > 1) {
    const double replicated = (replication_factor(sockets) - 1.0) * n_local;
    const double fabric_bw = machine_.interconnect.link_bandwidth *
                             machine_.interconnect.efficiency;
    for (std::size_t l = 0; l < layers; ++l) {
      comm_seconds += 2.0 * replicated * 4.0 *
                      static_cast<double>(dims[l + 1]) / fabric_bw;
    }
  }

  const double sync_seconds = sockets > 1 ? kSyncOverhead : 0.0;
  return kernel_seconds + overhead_seconds + comm_seconds + sync_seconds;
}

}  // namespace mggcn::baselines
