// Mini-batch sampled GCN trainer — the DistDGL-style alternative the paper
// contrasts full-batch training against (§1): neighborhood-sampled
// GraphSAGE-mean layers trained on per-batch computation graphs.
//
// Real host numerics on the same kernel substrate as MG-GCN, so the two
// approaches can be compared on accuracy as well as per-epoch work. The
// paper's two claims this baseline lets us measure:
//   1. per-epoch work grows with depth (neighborhood explosion);
//   2. mini-batch training "can lead to lower accuracy compared to
//      full-batch training".
#pragma once

#include <cstdint>
#include <vector>

#include "dense/matrix.hpp"
#include "graph/datasets.hpp"
#include "graph/sampling.hpp"
#include "sparse/csr.hpp"
#include "util/rng.hpp"

namespace mggcn::baselines {

class MiniBatchTrainer {
 public:
  struct Options {
    std::vector<std::int64_t> hidden_dims = {64};
    /// Neighbors sampled per vertex per hop; one entry per layer
    /// (deepest-first order is handled internally). <= 0 = no cap.
    std::vector<std::int64_t> fanout = {10, 10};
    std::int64_t batch_size = 128;
    double learning_rate = 1e-2;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    std::uint64_t seed = 1;
  };

  MiniBatchTrainer(const graph::Dataset& dataset, Options options);

  struct EpochResult {
    double loss = 0.0;
    double train_accuracy = 0.0;
    /// Aggregation edges touched this epoch (the explosion metric; the
    /// full-batch equivalent is L * nnz).
    std::int64_t sampled_edges = 0;
  };

  /// One pass over all training vertices in random batches.
  EpochResult train_epoch();

  /// Full-graph inference with the un-sampled mean-aggregation operator
  /// (standard mini-batch evaluation protocol); returns logits (n x C).
  [[nodiscard]] dense::HostMatrix forward_full() const;

  [[nodiscard]] int num_layers() const {
    return static_cast<int>(dims_.size()) - 1;
  }

 private:
  const graph::Dataset& dataset_;
  Options options_;
  std::vector<std::int64_t> dims_;

  sparse::Csr mean_operator_;  // row-normalized adjacency (full graph)
  graph::NeighborSampler sampler_;

  std::vector<dense::HostMatrix> weights_, adam_m_, adam_v_;
  std::vector<std::uint32_t> train_vertices_;
  int adam_step_ = 0;
  mutable util::Rng rng_;
};

}  // namespace mggcn::baselines
