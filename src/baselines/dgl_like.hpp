// DGL-like baseline (single GPU).
//
// The paper compares against DGL 0.7.1 (§6.5): an eager, Python-dispatched
// framework with per-op output allocation and generic sparse kernels, and no
// multi-GPU support for full-batch GCN. We reproduce that *design point* on
// the same substrate:
//   - single device only (like the paper's DGL runs);
//   - no buffer reuse: saved pre-activations + gradients per layer
//     (3 n x d buffers per layer instead of 1 — Fig. 12's slope);
//   - no §4.4 optimizations (no GeMM/SpMM order switch, no first-layer
//     backward-SpMM skip: 4 SpMMs per epoch in a 2-layer model vs
//     MG-GCN's 3);
//   - generic SpMM with format-conversion overhead (traffic factor) and
//     eager per-op dispatch (kernel launch multiplier).
// The factor values below were calibrated once so the single-GPU gaps land
// in the band the paper reports (1.4-3.1x across datasets); the *shape* of
// every comparison then emerges from the schedule, not from the constants.
#pragma once

#include "core/config.hpp"
#include "core/metrics.hpp"
#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "sim/machine.hpp"

namespace mggcn::baselines {

/// The configuration deltas that turn the engine into the DGL design point.
core::TrainConfig dgl_like_config(core::TrainConfig base);

class DglLikeTrainer {
 public:
  /// `machine` must have exactly one device (DGL full-batch is single-GPU).
  DglLikeTrainer(sim::Machine& machine, const graph::Dataset& dataset,
                 core::TrainConfig base = {});

  core::EpochStats train_epoch() { return trainer_.train_epoch(); }
  std::vector<core::EpochStats> train(int epochs) {
    return trainer_.train(epochs);
  }
  [[nodiscard]] std::uint64_t peak_memory_bytes() const {
    return trainer_.peak_memory_bytes();
  }
  [[nodiscard]] const core::MgGcnTrainer& engine() const { return trainer_; }

 private:
  core::MgGcnTrainer trainer_;
};

}  // namespace mggcn::baselines
