// CAGNET-like baseline (multi-GPU, 1D).
//
// CAGNET (Tripathy, Yelick, Buluç; SC'20) trains full-batch GCNs with 1D /
// 1.5D / 2D / 3D SUMMA-style partitionings on top of PyTorch + NCCL 2.4.
// The paper compares against its best variant (1D) on DGX-V100 (§6.5) and
// reports: no buffer reuse (hence the memory gap of Fig. 12 and the
// Proteins OOM of Fig. 10), no communication/computation overlap, no
// load-balancing permutation, and an older NCCL. This baseline runs the
// same engine at exactly that design point.
//
// The 1.5D variant is covered analytically by bench_sec51_partitioning
// (matching §5.1, which argues it from bandwidth arithmetic rather than
// measurement).
#pragma once

#include "core/config.hpp"
#include "core/metrics.hpp"
#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "sim/machine.hpp"

namespace mggcn::baselines {

core::TrainConfig cagnet_config(core::TrainConfig base);

class CagnetTrainer {
 public:
  CagnetTrainer(sim::Machine& machine, const graph::Dataset& dataset,
                core::TrainConfig base = {});

  core::EpochStats train_epoch() { return trainer_.train_epoch(); }
  std::vector<core::EpochStats> train(int epochs) {
    return trainer_.train(epochs);
  }
  [[nodiscard]] std::uint64_t peak_memory_bytes() const {
    return trainer_.peak_memory_bytes();
  }
  [[nodiscard]] const core::MgGcnTrainer& engine() const { return trainer_; }

 private:
  core::MgGcnTrainer trainer_;
};

}  // namespace mggcn::baselines
