// DistGNN-like baseline (CPU cluster, Table 2).
//
// DistGNN (Md et al., SC'21) trains full-graph GCNs on clusters of Xeon 9242
// sockets with Libra vertex-cut partitioning. Its source was not available
// to the paper's authors either — §6.6 compares against the *reported*
// numbers. We therefore model DistGNN analytically on the same cost-model
// machinery (roofline kernels on the Xeon socket profile + a per-edge
// aggregation-framework overhead + vertex-cut replication communication)
// and the Table 2 bench prints model-vs-reported side by side. The model is
// calibrated on the single-socket Reddit/Products/Proteins rows; everything
// else (scaling shape, the communication wall past ~16 sockets, MG-GCN's
// 12-40x advantage) follows from the arithmetic.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/datasets.hpp"
#include "sim/profile.hpp"

namespace mggcn::baselines {

class DistGnnModel {
 public:
  DistGnnModel() : machine_(sim::xeon_9242_cluster()) {}

  /// Modeled epoch seconds for a full-scale dataset spec, GCN layer-dim
  /// chain [d_0, hidden..., classes], on `sockets` sockets.
  [[nodiscard]] double epoch_seconds(const graph::DatasetSpec& spec,
                                     const std::vector<std::int64_t>& dims,
                                     int sockets) const;

  /// Vertex replication factor of the Libra-style vertex cut at S sockets
  /// (1 = no replication). Grows ~sqrt(S) for power-law graphs.
  [[nodiscard]] static double replication_factor(int sockets);

 private:
  sim::MachineProfile machine_;

  /// Fraction of roofline throughput the CPU aggregation kernels achieve.
  static constexpr double kKernelEfficiency = 0.5;
  /// Per-edge host-side aggregation-framework overhead (seconds).
  static constexpr double kPerEdgeOverhead = 4e-9;
  /// Per-epoch distributed synchronization/straggler overhead (seconds)
  /// once more than one socket participates. Calibrated on DistGNN's
  /// near-zero Reddit scaling (0.60 s at 1 socket vs 0.61 s at 16).
  static constexpr double kSyncOverhead = 0.45;
};

}  // namespace mggcn::baselines
