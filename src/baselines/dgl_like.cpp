#include "baselines/dgl_like.hpp"

#include "util/error.hpp"

namespace mggcn::baselines {

core::TrainConfig dgl_like_config(core::TrainConfig base) {
  base.permute = false;  // DGL trains in the dataset's order
  base.overlap = false;  // single device: nothing to overlap
  // DGL 0.7's GraphConv picks aggregate-first when in_feats <= out_feats —
  // the same order heuristic as §4.4 — and PyTorch autograd saves the
  // aggregation, so an aggregate-first first layer needs no backward SpMM.
  base.reorder_gemm_spmm = true;
  base.skip_first_backward_spmm = false;
  base.autograd_aggregation_reuse = true;
  base.reuse_buffers = false;              // per-op outputs + saved tensors
  base.kernel_overhead_multiplier = 20.0;  // eager Python dispatch per op
  base.spmm_traffic_factor = 1.45;         // generic kernels + conversions
  return base;
}

DglLikeTrainer::DglLikeTrainer(sim::Machine& machine,
                               const graph::Dataset& dataset,
                               core::TrainConfig base)
    : trainer_(machine, dataset, dgl_like_config(std::move(base))) {
  MGGCN_CHECK_MSG(machine.num_devices() == 1,
                  "the DGL baseline is single-GPU (like the paper's runs)");
}

}  // namespace mggcn::baselines
