#include "baselines/minibatch.hpp"

#include <algorithm>

#include "core/gcn_kernels.hpp"
#include "core/trainer.hpp"
#include "dense/kernels.hpp"
#include "sparse/spmm.hpp"
#include "util/error.hpp"

namespace mggcn::baselines {

namespace {

/// Mean-aggregation operator: adjacency with each row scaled to sum 1.
sparse::Csr row_normalize(const sparse::Csr& adjacency) {
  sparse::Csr out = adjacency;
  const auto row_ptr = out.row_ptr();
  auto values = out.values_mutable();
  for (std::int64_t r = 0; r < out.rows(); ++r) {
    const auto begin = row_ptr[static_cast<std::size_t>(r)];
    const auto end = row_ptr[static_cast<std::size_t>(r) + 1];
    double sum = 0.0;
    for (auto e = begin; e < end; ++e) {
      sum += values[static_cast<std::size_t>(e)];
    }
    if (sum <= 0.0) continue;
    for (auto e = begin; e < end; ++e) {
      values[static_cast<std::size_t>(e)] = static_cast<float>(
          values[static_cast<std::size_t>(e)] / sum);
    }
  }
  return out;
}

}  // namespace

MiniBatchTrainer::MiniBatchTrainer(const graph::Dataset& dataset,
                                   Options options)
    : dataset_(dataset),
      options_(std::move(options)),
      mean_operator_(row_normalize(dataset.adjacency)),
      sampler_(dataset.adjacency, options_.fanout),
      rng_(options_.seed * 77 + 5) {
  MGGCN_CHECK_MSG(dataset_.has_features(),
                  "mini-batch trainer needs features/labels");
  MGGCN_CHECK_MSG(options_.fanout.size() == options_.hidden_dims.size() + 1,
                  "need one fanout entry per layer");

  dims_.push_back(dataset_.spec.feature_dim);
  for (const auto h : options_.hidden_dims) dims_.push_back(h);
  dims_.push_back(dataset_.spec.num_classes);
  weights_ = core::init_weights(dims_, options_.seed);
  for (const auto& w : weights_) {
    adam_m_.emplace_back(w.rows(), w.cols());
    adam_v_.emplace_back(w.rows(), w.cols());
  }

  for (std::int64_t v = 0; v < dataset_.n(); ++v) {
    if (dataset_.train_mask[static_cast<std::size_t>(v)]) {
      train_vertices_.push_back(static_cast<std::uint32_t>(v));
    }
  }
  MGGCN_CHECK_MSG(!train_vertices_.empty(), "no training vertices");
}

MiniBatchTrainer::EpochResult MiniBatchTrainer::train_epoch() {
  EpochResult result;
  const int layers = num_layers();

  std::vector<std::uint32_t> order = train_vertices_;
  rng_.shuffle(order);

  std::int64_t correct = 0, counted = 0;
  for (std::size_t begin = 0; begin < order.size();
       begin += static_cast<std::size_t>(options_.batch_size)) {
    const std::size_t end = std::min(
        order.size(), begin + static_cast<std::size_t>(options_.batch_size));
    const std::vector<std::uint32_t> seeds(order.begin() + begin,
                                           order.begin() + end);
    const graph::SampledSubgraph sub = sampler_.sample(seeds, rng_);
    result.sampled_edges += sub.total_edges();

    // Forward, deepest layer first: h = X[layers[L]], then per level
    //   z_l = block * h,  h = relu(z_l W_l)   (no ReLU on the logits).
    const auto& deepest = sub.layers.back();
    dense::HostMatrix h(static_cast<std::int64_t>(deepest.size()),
                        dims_.front());
    dense::gather_rows(dataset_.features.view(), deepest.data(), h.view());

    std::vector<dense::HostMatrix> z_cache;   // block * h per level
    std::vector<dense::HostMatrix> h_cache;   // inputs per level
    for (int l = 0; l < layers; ++l) {
      const sparse::Csr& block =
          sub.blocks[static_cast<std::size_t>(layers - 1 - l)];
      h_cache.push_back(std::move(h));
      dense::HostMatrix z(block.rows(), dims_[static_cast<std::size_t>(l)]);
      sparse::spmm(block, h_cache.back().view(), z.view());
      dense::HostMatrix out(block.rows(),
                            dims_[static_cast<std::size_t>(l) + 1]);
      dense::gemm(z.view(), weights_[static_cast<std::size_t>(l)].view(),
                  out.view());
      if (l + 1 < layers) {
        dense::relu_forward(out.data(), out.data(), out.size());
      }
      z_cache.push_back(std::move(z));
      h = std::move(out);
    }

    // Loss + gradient on the seeds.
    const auto& seed_layer = sub.layers.front();
    std::vector<std::int32_t> labels(seed_layer.size());
    for (std::size_t i = 0; i < seed_layer.size(); ++i) {
      labels[i] = dataset_.labels[seed_layer[i]];
    }
    const core::LossResult loss = core::softmax_cross_entropy_inplace(
        h.view(), labels.data(), nullptr,
        static_cast<std::int64_t>(seed_layer.size()));
    result.loss += loss.loss_sum;
    correct += loss.correct;
    counted += loss.counted;

    // Backward through the levels.
    ++adam_step_;
    dense::HostMatrix grad = std::move(h);  // dL/d(out_{L-1})
    for (int l = layers - 1; l >= 0; --l) {
      const auto ll = static_cast<std::size_t>(l);
      const sparse::Csr& block =
          sub.blocks[static_cast<std::size_t>(layers - 1 - l)];

      // grad is already ReLU-masked here: the propagation step below masks
      // with h_cache[l+1] (this level's post-activation) before handing it
      // down.
      dense::HostMatrix w_grad(dims_[ll], dims_[ll + 1]);
      dense::gemm_at_b(z_cache[ll].view(), grad.view(), w_grad.view());

      if (l > 0) {
        // dL/dz = grad W^T; dL/dh_in = block^T (dL/dz); then mask by the
        // previous level's post-activation (h_cache[l] = relu output).
        dense::HostMatrix dz(block.rows(), dims_[ll]);
        dense::gemm_a_bt(grad.view(), weights_[ll].view(), dz.view());
        const sparse::Csr block_t = block.transpose();
        dense::HostMatrix dh(block_t.rows(), dims_[ll]);
        sparse::spmm(block_t, dz.view(), dh.view());
        dense::relu_backward(dh.data(), h_cache[ll].data(), dh.data(),
                             dh.size());
        grad = std::move(dh);
      }

      core::adam_update(weights_[ll].data(), w_grad.data(),
                        adam_m_[ll].data(), adam_v_[ll].data(),
                        w_grad.size(), adam_step_, options_.learning_rate,
                        options_.beta1, options_.beta2, options_.epsilon);
    }
  }

  result.train_accuracy =
      counted > 0 ? static_cast<double>(correct) / counted : 0.0;
  return result;
}

dense::HostMatrix MiniBatchTrainer::forward_full() const {
  const std::int64_t n = dataset_.n();
  dense::HostMatrix h = dataset_.features;
  for (int l = 0; l < num_layers(); ++l) {
    const auto ll = static_cast<std::size_t>(l);
    dense::HostMatrix z(n, dims_[ll]);
    sparse::spmm(mean_operator_, h.view(), z.view());
    dense::HostMatrix out(n, dims_[ll + 1]);
    dense::gemm(z.view(), weights_[ll].view(), out.view());
    if (l + 1 < num_layers()) {
      dense::relu_forward(out.data(), out.data(), out.size());
    }
    h = std::move(out);
  }
  return h;
}

}  // namespace mggcn::baselines
