// Dense row-major matrix types.
//
// Device-resident data lives in flat sim::DeviceBuffer storage; kernels view
// it through MatrixView (non-owning, shape-carrying). HostMatrix owns its
// storage and is used for inputs, references, and tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace mggcn::dense {

/// Non-owning view of a row-major matrix.
template <typename T>
struct BasicMatrixView {
  T* data = nullptr;
  std::int64_t rows = 0;
  std::int64_t cols = 0;

  [[nodiscard]] std::int64_t size() const { return rows * cols; }
  [[nodiscard]] T* row(std::int64_t r) const { return data + r * cols; }
  [[nodiscard]] T& at(std::int64_t r, std::int64_t c) const {
    return data[r * cols + c];
  }
  [[nodiscard]] bool valid() const { return data != nullptr; }

  operator BasicMatrixView<const T>() const
    requires(!std::is_const_v<T>)
  {
    return {data, rows, cols};
  }
};

using MatrixView = BasicMatrixView<float>;
using ConstMatrixView = BasicMatrixView<const float>;

/// Owning row-major host matrix (fp32, like the paper's training).
class HostMatrix {
 public:
  HostMatrix() = default;
  HostMatrix(std::int64_t rows, std::int64_t cols)
      : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows * cols)) {
    MGGCN_CHECK(rows >= 0 && cols >= 0);
  }

  [[nodiscard]] std::int64_t rows() const { return rows_; }
  [[nodiscard]] std::int64_t cols() const { return cols_; }
  [[nodiscard]] std::int64_t size() const { return rows_ * cols_; }

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }
  [[nodiscard]] float& at(std::int64_t r, std::int64_t c) {
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  [[nodiscard]] float at(std::int64_t r, std::int64_t c) const {
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }

  [[nodiscard]] MatrixView view() { return {data_.data(), rows_, cols_}; }
  [[nodiscard]] ConstMatrixView view() const {
    return {data_.data(), rows_, cols_};
  }

  void fill(float value) { std::fill(data_.begin(), data_.end(), value); }

  /// Glorot/Xavier-uniform initialization, as used for GCN weights.
  void init_glorot(util::Rng& rng) {
    const double limit = std::sqrt(6.0 / static_cast<double>(rows_ + cols_));
    for (auto& v : data_) {
      v = static_cast<float>(rng.uniform(-limit, limit));
    }
  }

  void init_gaussian(util::Rng& rng, double mean = 0.0, double stddev = 1.0) {
    for (auto& v : data_) {
      v = static_cast<float>(rng.gaussian(mean, stddev));
    }
  }

  /// Rows [begin, end) as a new matrix (used to scatter H across devices).
  [[nodiscard]] HostMatrix row_block(std::int64_t begin,
                                     std::int64_t end) const {
    MGGCN_CHECK(0 <= begin && begin <= end && end <= rows_);
    HostMatrix out(end - begin, cols_);
    std::copy(data_.begin() + begin * cols_, data_.begin() + end * cols_,
              out.data_.begin());
    return out;
  }

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<float> data_;
};

/// Max |a-b| over two equally-shaped matrices (test helper).
double max_abs_diff(ConstMatrixView a, ConstMatrixView b);

}  // namespace mggcn::dense
