// Host-kernel policy registry.
//
// Every real-execution compute path (trainer epochs, baselines, benches,
// tests) funnels through the dense GeMM variants and the CSR SpMM. This
// registry lets callers pick between implementations at runtime:
//
//   - `naive`: the original straightforward loops, kept as the correctness
//     reference that tests diff the optimized kernels against.
//   - `tiled`: register-tiled, cache-blocked, auto-vectorizable kernels —
//     the host stand-in for the cuBLAS/cuSPARSE efficiency the paper's
//     performance story is built on (§4.4).
//   - `planned` (the default): the tiled dense kernels plus the
//     inspector–executor SpMM (sparse/spmm_plan.hpp), which amortizes a
//     one-time per-matrix degree-binning pass across every later launch.
//
// Selection: set_kernel_policy() programmatically, or the MGGCN_KERNELS
// environment variable ("naive" | "tiled" | "planned") read once at first
// use. Benches expose it as a CLI sweep so the policies land in the same
// JSON artifact for the perf-regression gate (scripts/check_perf.py).
#pragma once

#include <optional>
#include <string_view>

#include "dense/matrix.hpp"

namespace mggcn::dense {

enum class KernelPolicy { kNaive = 0, kTiled = 1, kPlanned = 2 };

inline constexpr int kNumKernelPolicies = 3;

/// Stable lower-case name ("naive" | "tiled" | "planned") for logs, CLI,
/// and JSON.
[[nodiscard]] const char* kernel_policy_name(KernelPolicy policy);

/// Parses a policy name; nullopt when unknown.
[[nodiscard]] std::optional<KernelPolicy> parse_kernel_policy(
    std::string_view name);

/// The active policy. Defaults to kPlanned, overridable once via the
/// MGGCN_KERNELS environment variable; throws InvalidArgumentError on an
/// unknown MGGCN_KERNELS value so experiment-script typos fail loudly.
[[nodiscard]] KernelPolicy kernel_policy();

/// Installs `policy` as the active policy (e.g. from a --kernels CLI flag).
void set_kernel_policy(KernelPolicy policy);

/// RAII policy override for tests and benches that diff the two paths.
class ScopedKernelPolicy {
 public:
  explicit ScopedKernelPolicy(KernelPolicy policy) : previous_(kernel_policy()) {
    set_kernel_policy(policy);
  }
  ~ScopedKernelPolicy() { set_kernel_policy(previous_); }
  ScopedKernelPolicy(const ScopedKernelPolicy&) = delete;
  ScopedKernelPolicy& operator=(const ScopedKernelPolicy&) = delete;

 private:
  KernelPolicy previous_;
};

/// Per-policy dense kernel entry points. The dispatching wrappers in
/// kernels.hpp look the active table up per call, so flipping the policy
/// mid-process (tests) immediately reroutes every caller.
struct DenseKernelTable {
  using GemmFn = void (*)(ConstMatrixView, ConstMatrixView, MatrixView, float,
                          float);
  using GemmMaskedFn = void (*)(ConstMatrixView, ConstMatrixView, MatrixView);

  GemmFn gemm = nullptr;
  GemmFn gemm_at_b = nullptr;
  GemmFn gemm_a_bt = nullptr;
  GemmMaskedFn gemm_a_bt_relu_masked = nullptr;
};

/// The kernel table registered for `policy`.
[[nodiscard]] const DenseKernelTable& dense_kernels(KernelPolicy policy);

/// Replaces the table for `policy` (hook for future backends, e.g. a BLAS
/// binding); the built-in naive and tiled tables are pre-registered.
void register_dense_kernels(KernelPolicy policy, const DenseKernelTable& table);

}  // namespace mggcn::dense
