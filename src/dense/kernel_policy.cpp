#include "dense/kernel_policy.hpp"

#include <atomic>

#include "dense/kernels.hpp"
#include "util/env.hpp"
#include "util/error.hpp"

namespace mggcn::dense {

namespace {

std::atomic<KernelPolicy>& active_policy() {
  static std::atomic<KernelPolicy> policy{
      util::env_enum("MGGCN_KERNELS", KernelPolicy::kPlanned,
                     parse_kernel_policy, "'naive', 'tiled', or 'planned'")};
  return policy;
}

DenseKernelTable* tables() {
  // The planned policy only changes the *sparse* path (its SpMM runs
  // through an inspector-built plan); for dense kernels it shares the
  // tiled implementations.
  static DenseKernelTable registered[kNumKernelPolicies] = {
      {&naive::gemm, &naive::gemm_at_b, &naive::gemm_a_bt,
       &naive::gemm_a_bt_relu_masked},
      {&tiled::gemm, &tiled::gemm_at_b, &tiled::gemm_a_bt,
       &tiled::gemm_a_bt_relu_masked},
      {&tiled::gemm, &tiled::gemm_at_b, &tiled::gemm_a_bt,
       &tiled::gemm_a_bt_relu_masked},
  };
  return registered;
}

}  // namespace

const char* kernel_policy_name(KernelPolicy policy) {
  switch (policy) {
    case KernelPolicy::kNaive:
      return "naive";
    case KernelPolicy::kTiled:
      return "tiled";
    case KernelPolicy::kPlanned:
      return "planned";
  }
  return "unknown";
}

std::optional<KernelPolicy> parse_kernel_policy(std::string_view name) {
  if (name == "naive") return KernelPolicy::kNaive;
  if (name == "tiled") return KernelPolicy::kTiled;
  if (name == "planned") return KernelPolicy::kPlanned;
  return std::nullopt;
}

KernelPolicy kernel_policy() {
  return active_policy().load(std::memory_order_relaxed);
}

void set_kernel_policy(KernelPolicy policy) {
  active_policy().store(policy, std::memory_order_relaxed);
}

const DenseKernelTable& dense_kernels(KernelPolicy policy) {
  return tables()[static_cast<int>(policy)];
}

void register_dense_kernels(KernelPolicy policy,
                            const DenseKernelTable& table) {
  MGGCN_CHECK_MSG(table.gemm != nullptr && table.gemm_at_b != nullptr &&
                      table.gemm_a_bt != nullptr &&
                      table.gemm_a_bt_relu_masked != nullptr,
                  "kernel table must be fully populated");
  tables()[static_cast<int>(policy)] = table;
}

}  // namespace mggcn::dense
