// Dense kernels (host implementations of what cuBLAS + fused elementwise
// kernels do in the paper's system) and their cost descriptors.
//
// The GeMM entry points below dispatch through the kernel-policy registry
// (kernel_policy.hpp): `naive::` holds the original reference loops and
// `tiled::` the register-tiled, cache-blocked implementations; the
// unqualified functions route to whichever policy is active. Call the
// namespaced variants directly only to diff the two paths.
//
// The cost functions return KernelCost records for the simulated timeline;
// they are pure functions of the shapes so phantom-mode runs produce the
// same schedule as real runs — the kernel policy changes wall-clock time
// only, never the simulated timeline.
#pragma once

#include <cstdint>

#include "dense/kernel_policy.hpp"
#include "dense/matrix.hpp"
#include "sim/cost_model.hpp"

namespace mggcn::dense {

/// Reference implementations (the correctness oracle for the tiled path).
namespace naive {
void gemm(ConstMatrixView a, ConstMatrixView b, MatrixView c, float alpha,
          float beta);
void gemm_at_b(ConstMatrixView a, ConstMatrixView b, MatrixView c, float alpha,
               float beta);
void gemm_a_bt(ConstMatrixView a, ConstMatrixView b, MatrixView c, float alpha,
               float beta);
void gemm_a_bt_relu_masked(ConstMatrixView a, ConstMatrixView b, MatrixView c);
}  // namespace naive

/// Register-tiled, k-panel cache-blocked, auto-vectorizable implementations.
namespace tiled {
void gemm(ConstMatrixView a, ConstMatrixView b, MatrixView c, float alpha,
          float beta);
void gemm_at_b(ConstMatrixView a, ConstMatrixView b, MatrixView c, float alpha,
               float beta);
void gemm_a_bt(ConstMatrixView a, ConstMatrixView b, MatrixView c, float alpha,
               float beta);
void gemm_a_bt_relu_masked(ConstMatrixView a, ConstMatrixView b, MatrixView c);
}  // namespace tiled

/// C = alpha * A(m x k) * B(k x n) + beta * C.
void gemm(ConstMatrixView a, ConstMatrixView b, MatrixView c,
          float alpha = 1.0f, float beta = 0.0f);

/// C = alpha * A^T * B + beta * C, with A (k x m), B (k x n), C (m x n).
/// (The weight-gradient GeMM HW_G^T * H of eq. (10).)
void gemm_at_b(ConstMatrixView a, ConstMatrixView b, MatrixView c,
               float alpha = 1.0f, float beta = 0.0f);

/// C = alpha * A * B^T + beta * C, with A (m x k), B (n x k), C (m x n).
/// (The input-gradient GeMM HW_G * W^T of eq. (11).)
void gemm_a_bt(ConstMatrixView a, ConstMatrixView b, MatrixView c,
               float alpha = 1.0f, float beta = 0.0f);

/// Fused eq. (11) + eq. (8): C[i,j] = C[i,j] > 0 ? (A * B^T)[i,j] : 0.
/// On entry C holds the *activation* of the downstream layer; it is
/// consumed for the ReLU mask and overwritten with the masked input
/// gradient in place — this is what lets MG-GCN's backward pass hand the
/// gradient to the next layer inside that layer's own output buffer
/// without any extra allocation (§4.2, eq. (21)).
void gemm_a_bt_relu_masked(ConstMatrixView a, ConstMatrixView b,
                           MatrixView c);

/// out = max(in, 0), elementwise over n values (eq. (7)).
void relu_forward(const float* in, float* out, std::int64_t n);

/// grad_in = grad_out where pre_activation > 0 else 0 (eq. (8)).
void relu_backward(const float* grad_out, const float* pre_activation,
                   float* grad_in, std::int64_t n);

void fill(float* dst, std::int64_t n, float value);
void copy(const float* src, float* dst, std::int64_t n);
/// y += alpha * x.
void axpy(const float* x, float* y, std::int64_t n, float alpha);

/// out.row(i) = src.row(idx[i]) for i in [0, out.rows): the batched feature
/// gather that assembles a sampled frontier's input block (one memcpy per
/// row beats per-row copy() calls in the minibatch baselines).
void gather_rows(ConstMatrixView src, const std::uint32_t* idx,
                 MatrixView out);

/// Cost of a GeMM of the given shape (counts one kernel launch).
[[nodiscard]] sim::KernelCost gemm_cost(std::int64_t m, std::int64_t n,
                                        std::int64_t k);

/// Cost of an elementwise pass reading `reads` and writing `writes` arrays
/// of n floats.
[[nodiscard]] sim::KernelCost elementwise_cost(std::int64_t n, int reads,
                                               int writes);

}  // namespace mggcn::dense
