#include "dense/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace mggcn::dense {

namespace {

/// Cache-blocking tile for the k dimension; keeps a B panel resident.
constexpr std::int64_t kBlockK = 64;

void check_gemm_shapes(std::int64_t am, std::int64_t ak, std::int64_t bk,
                       std::int64_t bn, std::int64_t cm, std::int64_t cn) {
  MGGCN_CHECK_MSG(ak == bk, "gemm inner dimensions must agree");
  MGGCN_CHECK_MSG(am == cm && bn == cn, "gemm output shape mismatch");
}

}  // namespace

double max_abs_diff(ConstMatrixView a, ConstMatrixView b) {
  MGGCN_CHECK(a.rows == b.rows && a.cols == b.cols);
  double m = 0.0;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    m = std::max(m, static_cast<double>(std::fabs(a.data[i] - b.data[i])));
  }
  return m;
}

namespace naive {

void gemm(ConstMatrixView a, ConstMatrixView b, MatrixView c, float alpha,
          float beta) {
  check_gemm_shapes(a.rows, a.cols, b.rows, b.cols, c.rows, c.cols);
  const std::int64_t m = a.rows, k = a.cols, n = b.cols;

  if (beta == 0.0f) {
    fill(c.data, c.size(), 0.0f);
  } else if (beta != 1.0f) {
    for (std::int64_t i = 0; i < c.size(); ++i) c.data[i] *= beta;
  }

  // i-kk-k-j ordering: unit-stride inner loop over C/B rows, with a k-panel
  // block so the B panel stays cache resident.
  for (std::int64_t kk = 0; kk < k; kk += kBlockK) {
    const std::int64_t k_end = std::min(k, kk + kBlockK);
    for (std::int64_t i = 0; i < m; ++i) {
      float* ci = c.row(i);
      const float* ai = a.row(i);
      for (std::int64_t p = kk; p < k_end; ++p) {
        const float aip = alpha * ai[p];
        if (aip == 0.0f) continue;
        const float* bp = b.row(p);
        for (std::int64_t j = 0; j < n; ++j) {
          ci[j] += aip * bp[j];
        }
      }
    }
  }
}

void gemm_at_b(ConstMatrixView a, ConstMatrixView b, MatrixView c, float alpha,
               float beta) {
  // A is (k x m) and participates transposed: C(m x n) = A^T B.
  check_gemm_shapes(a.cols, a.rows, b.rows, b.cols, c.rows, c.cols);
  const std::int64_t k = a.rows, m = a.cols, n = b.cols;

  if (beta == 0.0f) {
    fill(c.data, c.size(), 0.0f);
  } else if (beta != 1.0f) {
    for (std::int64_t i = 0; i < c.size(); ++i) c.data[i] *= beta;
  }

  for (std::int64_t p = 0; p < k; ++p) {
    const float* ap = a.row(p);
    const float* bp = b.row(p);
    for (std::int64_t i = 0; i < m; ++i) {
      const float api = alpha * ap[i];
      if (api == 0.0f) continue;
      float* ci = c.row(i);
      for (std::int64_t j = 0; j < n; ++j) {
        ci[j] += api * bp[j];
      }
    }
  }
}

void gemm_a_bt(ConstMatrixView a, ConstMatrixView b, MatrixView c, float alpha,
               float beta) {
  // B is (n x k) and participates transposed: C(m x n) = A B^T.
  check_gemm_shapes(a.rows, a.cols, b.cols, b.rows, c.rows, c.cols);
  const std::int64_t m = a.rows, k = a.cols, n = b.rows;

  for (std::int64_t i = 0; i < m; ++i) {
    const float* ai = a.row(i);
    float* ci = c.row(i);
    for (std::int64_t j = 0; j < n; ++j) {
      const float* bj = b.row(j);
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += ai[p] * bj[p];
      }
      ci[j] = alpha * acc + (beta == 0.0f ? 0.0f : beta * ci[j]);
    }
  }
}

void gemm_a_bt_relu_masked(ConstMatrixView a, ConstMatrixView b,
                           MatrixView c) {
  check_gemm_shapes(a.rows, a.cols, b.cols, b.rows, c.rows, c.cols);
  const std::int64_t m = a.rows, k = a.cols, n = b.rows;

  for (std::int64_t i = 0; i < m; ++i) {
    const float* ai = a.row(i);
    float* ci = c.row(i);
    for (std::int64_t j = 0; j < n; ++j) {
      if (ci[j] <= 0.0f) {
        ci[j] = 0.0f;
        continue;
      }
      const float* bj = b.row(j);
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += ai[p] * bj[p];
      }
      ci[j] = acc;
    }
  }
}

}  // namespace naive

void gemm(ConstMatrixView a, ConstMatrixView b, MatrixView c, float alpha,
          float beta) {
  dense_kernels(kernel_policy()).gemm(a, b, c, alpha, beta);
}

void gemm_at_b(ConstMatrixView a, ConstMatrixView b, MatrixView c, float alpha,
               float beta) {
  dense_kernels(kernel_policy()).gemm_at_b(a, b, c, alpha, beta);
}

void gemm_a_bt(ConstMatrixView a, ConstMatrixView b, MatrixView c, float alpha,
               float beta) {
  dense_kernels(kernel_policy()).gemm_a_bt(a, b, c, alpha, beta);
}

void gemm_a_bt_relu_masked(ConstMatrixView a, ConstMatrixView b,
                           MatrixView c) {
  dense_kernels(kernel_policy()).gemm_a_bt_relu_masked(a, b, c);
}

void relu_forward(const float* in, float* out, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    out[i] = in[i] > 0.0f ? in[i] : 0.0f;
  }
}

void relu_backward(const float* grad_out, const float* pre_activation,
                   float* grad_in, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    grad_in[i] = pre_activation[i] > 0.0f ? grad_out[i] : 0.0f;
  }
}

void fill(float* dst, std::int64_t n, float value) {
  std::fill(dst, dst + n, value);
}

void copy(const float* src, float* dst, std::int64_t n) {
  std::memcpy(dst, src, static_cast<std::size_t>(n) * sizeof(float));
}

void axpy(const float* x, float* y, std::int64_t n, float alpha) {
  for (std::int64_t i = 0; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

void gather_rows(ConstMatrixView src, const std::uint32_t* idx,
                 MatrixView out) {
  MGGCN_CHECK_MSG(src.cols == out.cols, "gather_rows width mismatch");
  const std::size_t row_bytes =
      static_cast<std::size_t>(src.cols) * sizeof(float);
  for (std::int64_t i = 0; i < out.rows; ++i) {
    const std::int64_t r = static_cast<std::int64_t>(idx[i]);
    MGGCN_CHECK_MSG(r < src.rows, "gather_rows index out of range");
    std::memcpy(out.row(i), src.row(r), row_bytes);
  }
}

sim::KernelCost gemm_cost(std::int64_t m, std::int64_t n, std::int64_t k) {
  sim::KernelCost cost;
  cost.flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
               static_cast<double>(k);
  cost.stream_bytes =
      4.0 * (static_cast<double>(m) * k + static_cast<double>(k) * n +
             2.0 * static_cast<double>(m) * n);
  cost.launches = 1;
  return cost;
}

sim::KernelCost elementwise_cost(std::int64_t n, int reads, int writes) {
  sim::KernelCost cost;
  cost.stream_bytes = 4.0 * static_cast<double>(n) * (reads + writes);
  cost.flops = static_cast<double>(n);
  cost.launches = 1;
  return cost;
}

}  // namespace mggcn::dense
