// Register-tiled, cache-blocked GeMM variants (the `tiled` kernel policy).
//
// Structure (what cuBLAS does on a GPU, translated to one host core):
//   - an i x j register tile of C (kMr x kNr accumulators) lives entirely in
//     vector registers across the k loop, so the inner loop does one B-row
//     load + kMr broadcast-FMAs per k step instead of a C-row read-modify-
//     write per step;
//   - the k dimension is blocked into kKc panels so the B panel a register
//     tile streams (kKc x kNr floats = 16 KiB) stays L1-resident while the
//     i0 loop sweeps down the A panel;
//   - beta is folded into the first k panel's store (no separate zeroing or
//     scaling pass over C);
//   - ragged shapes fall back to a bounds-checked tail micro-kernel, so any
//     (m, k, n) is handled.
//
// Everything is plain scalar C++ with __restrict and fixed trip counts —
// the compiler's auto-vectorizer turns the kNr-wide inner loops into SIMD;
// no intrinsics, so the kernels are portable across ISAs.
#include "dense/kernels.hpp"

#include <algorithm>

namespace mggcn::dense::tiled {

namespace {

/// Register-tile rows of C.
constexpr std::int64_t kMr = 4;
/// Register-tile columns of C (SIMD width times unroll).
constexpr std::int64_t kNr = 16;
/// k cache panel: a kKc x kNr B panel is 16 KiB, safely L1-resident.
constexpr std::int64_t kKc = 256;

/// p-strip width for the dot-product (A * B^T) kernels: 32 floats = four
/// independent 8-wide accumulator vectors, enough to hide the FP add
/// latency within a single stream.
constexpr std::int64_t kPr = 32;
/// Columns of C per dot-product register tile.
constexpr std::int64_t kJr = 4;
/// Cache block (A rows x B rows) for the dot-product kernels. Without it
/// every output row re-streams all of B from L3 and the kernels are
/// bandwidth-bound; a 64-row B block (<= 128 KiB at k = 512) stays
/// L2-resident across the i sweep. Must be a multiple of kJr.
constexpr std::int64_t kIb = 64;
constexpr std::int64_t kJb = 64;
static_assert(kJb % kJr == 0);

void scale_output(MatrixView c, float beta) {
  if (beta == 0.0f) {
    fill(c.data, c.size(), 0.0f);
  } else if (beta != 1.0f) {
    for (std::int64_t i = 0; i < c.size(); ++i) c.data[i] *= beta;
  }
}

/// Full kMr x kNr register tile over a k panel of length kc. A is accessed
/// as a[r * a_r_stride + p * a_p_stride] so the same kernel serves both the
/// A and A^T layouts. `first_panel` folds the alpha/beta epilogue into the
/// store of the first panel; later panels accumulate.
inline void micro_full(const float* __restrict a, std::int64_t a_r_stride,
                       std::int64_t a_p_stride, const float* __restrict b,
                       std::int64_t ldb, float* __restrict c, std::int64_t ldc,
                       std::int64_t kc, float alpha, float beta,
                       bool first_panel) {
  // One named accumulator array per C row, not acc[kMr][kNr]: indexing the
  // tile by a loop-variant row keeps it in stack memory (a read-modify-write
  // per k step, ~10x slower), while distinct fixed-size arrays are promoted
  // to vector registers after the j loops vectorize.
  float acc0[kNr] = {}, acc1[kNr] = {}, acc2[kNr] = {}, acc3[kNr] = {};
  static_assert(kMr == 4, "micro_full hand-unrolls the kMr accumulator rows");
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* bp = b + p * ldb;
    const float* ap = a + p * a_p_stride;
    const float av0 = ap[0];
    const float av1 = ap[a_r_stride];
    const float av2 = ap[2 * a_r_stride];
    const float av3 = ap[3 * a_r_stride];
    for (std::int64_t j = 0; j < kNr; ++j) {
      acc0[j] += av0 * bp[j];
      acc1[j] += av1 * bp[j];
      acc2[j] += av2 * bp[j];
      acc3[j] += av3 * bp[j];
    }
  }
  float acc[kMr][kNr];
  for (std::int64_t j = 0; j < kNr; ++j) {
    acc[0][j] = acc0[j];
    acc[1][j] = acc1[j];
    acc[2][j] = acc2[j];
    acc[3][j] = acc3[j];
  }
  if (first_panel) {
    if (beta == 0.0f) {
      for (std::int64_t r = 0; r < kMr; ++r) {
        float* cr = c + r * ldc;
        for (std::int64_t j = 0; j < kNr; ++j) cr[j] = alpha * acc[r][j];
      }
    } else {
      for (std::int64_t r = 0; r < kMr; ++r) {
        float* cr = c + r * ldc;
        for (std::int64_t j = 0; j < kNr; ++j) {
          cr[j] = alpha * acc[r][j] + beta * cr[j];
        }
      }
    }
  } else {
    for (std::int64_t r = 0; r < kMr; ++r) {
      float* cr = c + r * ldc;
      for (std::int64_t j = 0; j < kNr; ++j) cr[j] += alpha * acc[r][j];
    }
  }
}

/// Bounds-checked tail tile (mr <= kMr rows, nr <= kNr columns).
inline void micro_tail(const float* __restrict a, std::int64_t a_r_stride,
                       std::int64_t a_p_stride, const float* __restrict b,
                       std::int64_t ldb, float* __restrict c, std::int64_t ldc,
                       std::int64_t mr, std::int64_t nr, std::int64_t kc,
                       float alpha, float beta, bool first_panel) {
  float acc[kMr][kNr] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* bp = b + p * ldb;
    for (std::int64_t r = 0; r < mr; ++r) {
      const float av = a[r * a_r_stride + p * a_p_stride];
      float* accr = acc[r];
      for (std::int64_t j = 0; j < nr; ++j) {
        accr[j] += av * bp[j];
      }
    }
  }
  for (std::int64_t r = 0; r < mr; ++r) {
    float* cr = c + r * ldc;
    for (std::int64_t j = 0; j < nr; ++j) {
      if (first_panel) {
        cr[j] = alpha * acc[r][j] +
                (beta == 0.0f ? 0.0f : beta * cr[j]);
      } else {
        cr[j] += alpha * acc[r][j];
      }
    }
  }
}

/// Shared driver for C = alpha * op(A) * B + beta * C with op(A) either A
/// (a_trans = false, A is m x k) or A^T (a_trans = true, A is k x m).
void gemm_driver(const float* a, std::int64_t lda, bool a_trans,
                 const float* b, std::int64_t ldb, float* c, std::int64_t ldc,
                 std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                 float beta) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    scale_output({c, m, n}, beta);
    return;
  }
  const std::int64_t a_r_stride = a_trans ? 1 : lda;
  const std::int64_t a_p_stride = a_trans ? lda : 1;

  for (std::int64_t kk = 0; kk < k; kk += kKc) {
    const std::int64_t kc = std::min(kKc, k - kk);
    const bool first_panel = kk == 0;
    const float* bk = b + kk * ldb;
    for (std::int64_t i0 = 0; i0 < m; i0 += kMr) {
      const std::int64_t mr = std::min(kMr, m - i0);
      const float* ab =
          a_trans ? a + kk * lda + i0 : a + i0 * lda + kk;
      float* cb = c + i0 * ldc;
      std::int64_t j0 = 0;
      if (mr == kMr) {
        for (; j0 + kNr <= n; j0 += kNr) {
          micro_full(ab, a_r_stride, a_p_stride, bk + j0, ldb, cb + j0, ldc,
                     kc, alpha, beta, first_panel);
        }
      }
      for (; j0 < n; j0 += kNr) {
        micro_tail(ab, a_r_stride, a_p_stride, bk + j0, ldb, cb + j0, ldc, mr,
                   std::min(kNr, n - j0), kc, alpha, beta, first_panel);
      }
    }
  }
}

void check_gemm_shapes(std::int64_t am, std::int64_t ak, std::int64_t bk,
                       std::int64_t bn, std::int64_t cm, std::int64_t cn) {
  MGGCN_CHECK_MSG(ak == bk, "gemm inner dimensions must agree");
  MGGCN_CHECK_MSG(am == cm && bn == cn, "gemm output shape mismatch");
}

/// Short-vector dot product. The final partial-sum reduction cannot be
/// reassociated (no -ffast-math), so it runs as ordered scalar adds; for
/// small k an 8-wide strip keeps that epilogue from dominating the dot.
inline float dot1_short(const float* __restrict ai,
                        const float* __restrict bj, std::int64_t k,
                        float alpha) {
  constexpr std::int64_t kW = 8;
  float acc[kW] = {};
  std::int64_t p = 0;
  for (; p + kW <= k; p += kW) {
    for (std::int64_t l = 0; l < kW; ++l) {
      acc[l] += ai[p + l] * bj[p + l];
    }
  }
  float sum = 0.0f;
  for (; p < k; ++p) sum += ai[p] * bj[p];
  for (std::int64_t l = 0; l < kW; ++l) sum += acc[l];
  return alpha * sum;
}

/// One dot product with a kPr-wide strip of explicit partial accumulators,
/// so the reduction vectorizes without reassociation license. Returns
/// alpha * (a . b_j).
inline float dot1(const float* __restrict ai, const float* __restrict bj,
                  std::int64_t k, float alpha) {
  if (k < 4 * kPr) return dot1_short(ai, bj, k, alpha);
  float acc[kPr] = {};
  std::int64_t p = 0;
  for (; p + kPr <= k; p += kPr) {
    for (std::int64_t l = 0; l < kPr; ++l) {
      acc[l] += ai[p + l] * bj[p + l];
    }
  }
  float sum = 0.0f;
  for (; p < k; ++p) sum += ai[p] * bj[p];
  for (std::int64_t l = 0; l < kPr; ++l) sum += acc[l];
  return alpha * sum;
}

/// kJr dot products: one A row against kJr B rows. Deliberately four
/// independent dot1 loops, NOT one loop with four interleaved accumulator
/// statements — GCC's SLP vectorizer turns the interleaved form into a
/// vpermd/vblendps shuffle storm that runs ~5x slower than these plain
/// strip loops. The extra ai re-reads all hit L1.
inline void dot4(const float* __restrict ai, const float* __restrict b0,
                 const float* __restrict b1, const float* __restrict b2,
                 const float* __restrict b3, std::int64_t k, float alpha,
                 float out[kJr]) {
  out[0] = dot1(ai, b0, k, alpha);
  out[1] = dot1(ai, b1, k, alpha);
  out[2] = dot1(ai, b2, k, alpha);
  out[3] = dot1(ai, b3, k, alpha);
}

}  // namespace

void gemm(ConstMatrixView a, ConstMatrixView b, MatrixView c, float alpha,
          float beta) {
  check_gemm_shapes(a.rows, a.cols, b.rows, b.cols, c.rows, c.cols);
  gemm_driver(a.data, a.cols, /*a_trans=*/false, b.data, b.cols, c.data,
              c.cols, a.rows, b.cols, a.cols, alpha, beta);
}

void gemm_at_b(ConstMatrixView a, ConstMatrixView b, MatrixView c, float alpha,
               float beta) {
  // A is (k x m) and participates transposed: C(m x n) = A^T B. The driver
  // reads the tile's A elements contiguously (a_r_stride = 1), so this
  // layout is actually the friendlier one.
  check_gemm_shapes(a.cols, a.rows, b.rows, b.cols, c.rows, c.cols);
  gemm_driver(a.data, a.cols, /*a_trans=*/true, b.data, b.cols, c.data,
              c.cols, a.cols, b.cols, a.rows, alpha, beta);
}

void gemm_a_bt(ConstMatrixView a, ConstMatrixView b, MatrixView c, float alpha,
               float beta) {
  // B is (n x k) and participates transposed: C(m x n) = A B^T. Both the A
  // row and the B rows are walked with unit stride, so the k loop is the
  // vectorized one (dot-product form with strip-mined accumulators).
  check_gemm_shapes(a.rows, a.cols, b.cols, b.rows, c.rows, c.cols);
  const std::int64_t m = a.rows, k = a.cols, n = b.rows;

  for (std::int64_t i0 = 0; i0 < m; i0 += kIb) {
    const std::int64_t i_end = std::min(i0 + kIb, m);
    for (std::int64_t j0 = 0; j0 < n; j0 += kJb) {
      const std::int64_t j_end = std::min(j0 + kJb, n);
      for (std::int64_t i = i0; i < i_end; ++i) {
        const float* ai = a.row(i);
        float* ci = c.row(i);
        std::int64_t j = j0;
        for (; j + kJr <= j_end; j += kJr) {
          float dots[kJr];
          dot4(ai, b.row(j), b.row(j + 1), b.row(j + 2), b.row(j + 3), k,
               alpha, dots);
          for (std::int64_t jj = 0; jj < kJr; ++jj) {
            ci[j + jj] =
                dots[jj] + (beta == 0.0f ? 0.0f : beta * ci[j + jj]);
          }
        }
        for (; j < j_end; ++j) {
          ci[j] = dot1(ai, b.row(j), k, alpha) +
                  (beta == 0.0f ? 0.0f : beta * ci[j]);
        }
      }
    }
  }
}

void gemm_a_bt_relu_masked(ConstMatrixView a, ConstMatrixView b,
                           MatrixView c) {
  check_gemm_shapes(a.rows, a.cols, b.cols, b.rows, c.rows, c.cols);
  const std::int64_t m = a.rows, k = a.cols, n = b.rows;

  for (std::int64_t i0 = 0; i0 < m; i0 += kIb) {
    const std::int64_t i_end = std::min(i0 + kIb, m);
    for (std::int64_t j0 = 0; j0 < n; j0 += kJb) {
      const std::int64_t j_end = std::min(j0 + kJb, n);
      for (std::int64_t i = i0; i < i_end; ++i) {
        const float* ai = a.row(i);
        float* ci = c.row(i);
        // The ReLU mask comes from the activation already in C. Skip
        // per element, like the naive kernel: at ReLU sparsity p that
        // drops a fraction p of the dot products outright, which beats
        // any tile-granular skip.
        for (std::int64_t j = j0; j < j_end; ++j) {
          ci[j] = ci[j] > 0.0f ? dot1(ai, b.row(j), k, 1.0f) : 0.0f;
        }
      }
    }
  }
}

}  // namespace mggcn::dense::tiled
