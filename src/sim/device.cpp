#include "sim/device.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <sstream>

#include "util/format.hpp"
#include "util/logging.hpp"

namespace mggcn::sim {

namespace {

/// Monotonic identity source for DeviceBuffer (0 is "no buffer").
std::atomic<std::uint64_t> next_buffer_id{1};

/// splitmix64: tiny, high-quality, and deterministic — the fuzz delays
/// must replay bit-identically for a given (seed, rank, stream).
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// MGGCN_SCHED_FUZZ=<seed> enables schedule fuzzing. Read per Stream (not
/// cached process-wide) so tests can flip the variable between machines.
bool sched_fuzz_seed(std::uint64_t* seed) {
  const char* env = std::getenv("MGGCN_SCHED_FUZZ");
  if (env == nullptr || env[0] == '\0') return false;
  *seed = std::strtoull(env, nullptr, 0);
  return true;
}

}  // namespace

// ---------------------------------------------------------------- Event --

Event Event::signaled(double sim_time) {
  auto state = std::make_shared<Event::State>();
  state->done = true;
  state->sim_time = sim_time;
  return Event(std::move(state));
}

double Event::wait() const {
  MGGCN_CHECK_MSG(state_ != nullptr, "waiting on a null event");
  std::unique_lock lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->done; });
  return state_->sim_time;
}

bool Event::is_complete() const {
  if (!state_) return false;
  std::lock_guard lock(state_->mutex);
  return state_->done;
}

// --------------------------------------------------------------- Stream --

Stream::Stream(Device& device, int id) : device_(device), id_(id) {
  if (device_.hazard() != nullptr) {
    hb_slot_ = device_.hazard()->register_stream();
  }
  std::uint64_t seed = 0;
  if (sched_fuzz_seed(&seed)) {
    fuzz_ = true;
    // Distinct per-(rank, stream) delay sequences from one seed.
    fuzz_state_ = seed + 0x9e3779b97f4a7c15ULL *
                             (static_cast<std::uint64_t>(device.rank()) * 2 +
                              static_cast<std::uint64_t>(id) + 1);
  }
  worker_ = std::thread([this] { worker_loop(); });
}

Stream::~Stream() {
  queue_.close();
  if (worker_.joinable()) worker_.join();
}

Event Stream::enqueue(TaskDesc desc) {
  if (desc.traced && device_.is_failed()) {
    std::ostringstream os;
    os << "device " << device_.rank() << " is lost; cannot enqueue '"
       << desc.label << "'";
    throw DeviceLostError(os.str(), device_.rank());
  }
  auto state = std::make_shared<Event::State>();
  PendingTask pending{std::move(desc), state, {}};
  if (device_.hazard() != nullptr) {
    pending.enqueue_clock = device_.hazard()->host_clock();
  }
  const bool accepted = queue_.push(std::move(pending));
  MGGCN_CHECK_MSG(accepted, "enqueue on a destroyed stream");
  return Event(state);
}

Event Stream::record_event() {
  TaskDesc marker;
  marker.label = "event";
  marker.traced = false;
  return enqueue(std::move(marker));
}

void Stream::wait_event(const Event& event) {
  TaskDesc barrier;
  barrier.label = "wait_event";
  barrier.traced = false;
  barrier.waits.push_back(event);
  enqueue(std::move(barrier));
}

void Stream::synchronize() {
  const Event event = record_event();
  event.wait();
  if (device_.hazard() != nullptr) {
    // The host has now observed everything this stream retired; later
    // enqueues (on any stream) are ordered after it via host program order.
    HbClock clock;
    {
      std::lock_guard lock(event.state()->mutex);
      clock = event.state()->hb_clock;
    }
    device_.hazard()->join_host_clock(clock);
  }
}

double Stream::sim_time() const {
  std::lock_guard lock(time_mutex_);
  return sim_time_;
}

void Stream::worker_loop() {
  while (true) {
    if (fuzz_) {
      // Deterministic seed-derived jitter before each dequeue: perturbs
      // host-thread interleavings (what the hazard checker audits) without
      // touching simulated time or numerics.
      const std::uint64_t delay_us = splitmix64(fuzz_state_) % 181;
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    }
    auto task = queue_.pop();
    if (!task) break;
    run_task(*task);
  }
}

void Stream::run_task(PendingTask& task) {
  TaskDesc& desc = task.desc;
  HazardChecker* const checker = device_.hazard();

  // Happens-before: the task inherits this stream's program order (clock_),
  // the host clock at enqueue time, and every awaited event's clock.
  if (checker != nullptr) {
    clock_join(clock_, task.enqueue_clock);
  }

  // Resolve dependencies: host-block until every awaited event is signaled,
  // taking the max of their simulated timestamps.
  double ready = sim_time();
  for (const Event& event : desc.waits) {
    ready = std::max(ready, event.wait());
    if (checker != nullptr) {
      std::lock_guard lock(event.state()->mutex);
      clock_join(clock_, event.state()->hb_clock);
    }
  }

  // Tick this stream's slot so the clock uniquely stamps the task.
  if (checker != nullptr) {
    if (clock_.size() <= static_cast<std::size_t>(hb_slot_)) {
      clock_.resize(static_cast<std::size_t>(hb_slot_) + 1, 0);
    }
    ++clock_[static_cast<std::size_t>(hb_slot_)];
  }

  double t_begin = ready;
  double t_end = ready;

  if (desc.collective) {
    CollectiveGroup& group = *desc.collective;
    std::unique_lock lock(group.mutex);
    // Every participant contributes its (ticked) clock before the
    // rendezvous completes; joining the result back afterwards gives all
    // parts one shared post-rendezvous stamp, so a collective orders all
    // ranks' prior work before all ranks' subsequent work — including the
    // parts' own declared accesses (the data movement happens inside the
    // rendezvous).
    if (checker != nullptr) clock_join(group.hb_join, clock_);
    group.start_max = std::max(group.start_max, ready);
    if (++group.arrived == group.nranks) {
      group.cv.notify_all();
    } else {
      group.cv.wait(lock, [&] { return group.arrived == group.nranks; });
    }
    if (desc.collective_executor) {
      if (group.action && device_.mode() == ExecutionMode::kReal) {
        lock.unlock();
        group.action();
        lock.lock();
      }
      group.action_done = true;
      group.cv.notify_all();
    } else {
      group.cv.wait(lock, [&] { return group.action_done; });
    }
    if (checker != nullptr) clock_join(clock_, group.hb_join);
    t_begin = group.start_max;
    t_end = t_begin + group.duration;
  } else {
    if (desc.body && device_.mode() == ExecutionMode::kReal) {
      desc.body();
    }
    const bool has_cost = desc.cost.stream_bytes > 0.0 ||
                          desc.cost.gather_bytes > 0.0 ||
                          desc.cost.flops > 0.0;
    const double duration =
        has_cost || desc.traced
            ? CostModel::seconds(desc.cost, device_.profile(),
                                 desc.bandwidth_scale)
            : 0.0;
    t_end = t_begin + duration;
  }

  {
    std::lock_guard lock(time_mutex_);
    sim_time_ = t_end;
  }

  if (checker != nullptr && (!desc.reads.empty() || !desc.writes.empty())) {
    checker->on_task(desc.label, clock_, desc.reads, desc.writes);
  }

  if (desc.traced && device_.trace() != nullptr) {
    device_.trace()->record(TraceRecord{
        .device = device_.rank(),
        .stream = id_,
        .kind = desc.collective ? TaskKind::kComm : desc.kind,
        .label = desc.label,
        .stage = desc.stage,
        .t_begin = t_begin,
        .t_end = t_end,
    });
  }

  {
    std::lock_guard lock(task.signal->mutex);
    task.signal->done = true;
    task.signal->sim_time = t_end;
    if (checker != nullptr) task.signal->hb_clock = clock_;
  }
  task.signal->cv.notify_all();
}

// --------------------------------------------------------------- Device --

Device::Device(int rank, DeviceProfile profile, ExecutionMode mode,
               Trace* trace, HazardChecker* hazard)
    : rank_(rank),
      profile_(std::move(profile)),
      mode_(mode),
      trace_(trace),
      hazard_(hazard) {
  streams_.push_back(std::make_unique<Stream>(*this, kComputeStream));
  streams_.push_back(std::make_unique<Stream>(*this, kCommStream));
}

Device::~Device() = default;

void Device::mark_failed() { failed_.store(true, std::memory_order_release); }

void Device::reserve_memory(std::uint64_t bytes, const std::string& what) {
  std::lock_guard lock(memory_mutex_);
  if (memory_used_ + bytes > profile_.memory_bytes) {
    std::ostringstream os;
    os << "device " << rank_ << " (" << profile_.name
       << ") out of memory allocating " << util::format_bytes(bytes)
       << " for '" << what << "': " << util::format_bytes(memory_used_)
       << " already in use of " << util::format_bytes(profile_.memory_bytes);
    throw OutOfMemoryError(os.str());
  }
  memory_used_ += bytes;
  memory_peak_ = std::max(memory_peak_, memory_used_);
}

void Device::release_memory(std::uint64_t bytes) noexcept {
  std::lock_guard lock(memory_mutex_);
  if (bytes > memory_used_) {
    // A double release would silently corrupt the ledger; surface it. The
    // trace counter propagates the error to benches and tests (the log
    // alone is invisible to automated accounting checks), the debug assert
    // keeps it fatal where a debugger is attached, and release builds clamp
    // so accounting stays monotone instead of wrapping.
    MGGCN_LOG(kError) << "device " << rank_ << " memory release underflow: "
                      << "releasing " << util::format_bytes(bytes)
                      << " with only " << util::format_bytes(memory_used_)
                      << " in use";
    if (trace_ != nullptr) {
      trace_->record_pool(PoolCounters{.release_underflows = 1});
    }
    assert(false && "device memory release underflow");
    memory_used_ = 0;
    return;
  }
  memory_used_ -= bytes;
}

std::uint64_t Device::memory_used() const {
  std::lock_guard lock(memory_mutex_);
  return memory_used_;
}

std::uint64_t Device::memory_peak() const {
  std::lock_guard lock(memory_mutex_);
  return memory_peak_;
}

void Device::reset_memory_peak() {
  std::lock_guard lock(memory_mutex_);
  memory_peak_ = memory_used_;
}

void Device::synchronize() {
  for (auto& stream : streams_) stream->synchronize();
}

double Device::sim_time() const {
  double t = 0.0;
  for (const auto& stream : streams_) t = std::max(t, stream->sim_time());
  return t;
}

// --------------------------------------------------------- DeviceBuffer --

std::uint64_t next_buffer_identity() {
  return next_buffer_id.fetch_add(1, std::memory_order_relaxed);
}

DeviceBuffer::DeviceBuffer(Device& device, std::size_t elements,
                           std::string name)
    : device_(&device),
      elements_(elements),
      name_(std::move(name)),
      id_(next_buffer_identity()) {
  device_->reserve_memory(bytes(), name_);
  if (device_->mode() == ExecutionMode::kReal && elements_ > 0) {
    storage_ = std::make_unique<float[]>(elements_);  // zero-initialized
    data_ = storage_.get();
  }
}

DeviceBuffer DeviceBuffer::view(Device& device, std::size_t elements,
                                float* data, std::string name,
                                std::uint64_t id) {
  DeviceBuffer buf;
  buf.device_ = &device;
  buf.elements_ = elements;
  buf.data_ = data;
  buf.owned_ = false;
  buf.name_ = std::move(name);
  buf.id_ = id;
  return buf;
}

DeviceBuffer::~DeviceBuffer() { release(); }

DeviceBuffer::DeviceBuffer(DeviceBuffer&& other) noexcept
    : device_(other.device_),
      elements_(other.elements_),
      storage_(std::move(other.storage_)),
      data_(other.data_),
      owned_(other.owned_),
      name_(std::move(other.name_)),
      id_(other.id_) {
  other.device_ = nullptr;
  other.elements_ = 0;
  other.data_ = nullptr;
  other.owned_ = true;
  other.id_ = 0;
}

DeviceBuffer& DeviceBuffer::operator=(DeviceBuffer&& other) noexcept {
  if (this != &other) {
    release();
    device_ = other.device_;
    elements_ = other.elements_;
    storage_ = std::move(other.storage_);
    data_ = other.data_;
    owned_ = other.owned_;
    name_ = std::move(other.name_);
    id_ = other.id_;
    other.device_ = nullptr;
    other.elements_ = 0;
    other.data_ = nullptr;
    other.owned_ = true;
    other.id_ = 0;
  }
  return *this;
}

BufferAccess DeviceBuffer::access() const {
  return BufferAccess{
      id_, name_ + "@gpu" +
               std::to_string(device_ != nullptr ? device_->rank() : -1)};
}

std::span<float> DeviceBuffer::span() {
  return data_ != nullptr ? std::span<float>(data_, elements_)
                          : std::span<float>();
}

std::span<const float> DeviceBuffer::span() const {
  return data_ != nullptr ? std::span<const float>(data_, elements_)
                          : std::span<const float>();
}

void DeviceBuffer::release() {
  if (owned_ && device_ != nullptr && elements_ > 0) {
    device_->release_memory(bytes());
  }
  device_ = nullptr;
  elements_ = 0;
  id_ = 0;
  storage_.reset();
  data_ = nullptr;
  owned_ = true;
}

}  // namespace mggcn::sim
