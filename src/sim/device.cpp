#include "sim/device.hpp"

#include <algorithm>
#include <sstream>

#include "util/format.hpp"

namespace mggcn::sim {

// ---------------------------------------------------------------- Event --

Event Event::signaled(double sim_time) {
  auto state = std::make_shared<Event::State>();
  state->done = true;
  state->sim_time = sim_time;
  return Event(std::move(state));
}

double Event::wait() const {
  MGGCN_CHECK_MSG(state_ != nullptr, "waiting on a null event");
  std::unique_lock lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->done; });
  return state_->sim_time;
}

bool Event::is_complete() const {
  if (!state_) return false;
  std::lock_guard lock(state_->mutex);
  return state_->done;
}

// --------------------------------------------------------------- Stream --

Stream::Stream(Device& device, int id) : device_(device), id_(id) {
  worker_ = std::thread([this] { worker_loop(); });
}

Stream::~Stream() {
  queue_.close();
  if (worker_.joinable()) worker_.join();
}

Event Stream::enqueue(TaskDesc desc) {
  if (desc.traced && device_.is_failed()) {
    std::ostringstream os;
    os << "device " << device_.rank() << " is lost; cannot enqueue '"
       << desc.label << "'";
    throw DeviceLostError(os.str(), device_.rank());
  }
  auto state = std::make_shared<Event::State>();
  const bool accepted =
      queue_.push(PendingTask{std::move(desc), state});
  MGGCN_CHECK_MSG(accepted, "enqueue on a destroyed stream");
  return Event(state);
}

Event Stream::record_event() {
  TaskDesc marker;
  marker.label = "event";
  marker.traced = false;
  return enqueue(std::move(marker));
}

void Stream::wait_event(const Event& event) {
  TaskDesc barrier;
  barrier.label = "wait_event";
  barrier.traced = false;
  barrier.waits.push_back(event);
  enqueue(std::move(barrier));
}

void Stream::synchronize() { record_event().wait(); }

double Stream::sim_time() const {
  std::lock_guard lock(time_mutex_);
  return sim_time_;
}

void Stream::worker_loop() {
  while (auto task = queue_.pop()) {
    run_task(*task);
  }
}

void Stream::run_task(PendingTask& task) {
  TaskDesc& desc = task.desc;

  // Resolve dependencies: host-block until every awaited event is signaled,
  // taking the max of their simulated timestamps.
  double ready = sim_time();
  for (const Event& event : desc.waits) {
    ready = std::max(ready, event.wait());
  }

  double t_begin = ready;
  double t_end = ready;

  if (desc.collective) {
    CollectiveGroup& group = *desc.collective;
    std::unique_lock lock(group.mutex);
    group.start_max = std::max(group.start_max, ready);
    if (++group.arrived == group.nranks) {
      group.cv.notify_all();
    } else {
      group.cv.wait(lock, [&] { return group.arrived == group.nranks; });
    }
    if (desc.collective_executor) {
      if (group.action && device_.mode() == ExecutionMode::kReal) {
        lock.unlock();
        group.action();
        lock.lock();
      }
      group.action_done = true;
      group.cv.notify_all();
    } else {
      group.cv.wait(lock, [&] { return group.action_done; });
    }
    t_begin = group.start_max;
    t_end = t_begin + group.duration;
  } else {
    if (desc.body && device_.mode() == ExecutionMode::kReal) {
      desc.body();
    }
    const bool has_cost = desc.cost.stream_bytes > 0.0 ||
                          desc.cost.gather_bytes > 0.0 ||
                          desc.cost.flops > 0.0;
    const double duration =
        has_cost || desc.traced
            ? CostModel::seconds(desc.cost, device_.profile(),
                                 desc.bandwidth_scale)
            : 0.0;
    t_end = t_begin + duration;
  }

  {
    std::lock_guard lock(time_mutex_);
    sim_time_ = t_end;
  }

  if (desc.traced && device_.trace() != nullptr) {
    device_.trace()->record(TraceRecord{
        .device = device_.rank(),
        .stream = id_,
        .kind = desc.collective ? TaskKind::kComm : desc.kind,
        .label = desc.label,
        .stage = desc.stage,
        .t_begin = t_begin,
        .t_end = t_end,
    });
  }

  {
    std::lock_guard lock(task.signal->mutex);
    task.signal->done = true;
    task.signal->sim_time = t_end;
  }
  task.signal->cv.notify_all();
}

// --------------------------------------------------------------- Device --

Device::Device(int rank, DeviceProfile profile, ExecutionMode mode,
               Trace* trace)
    : rank_(rank), profile_(std::move(profile)), mode_(mode), trace_(trace) {
  streams_.push_back(std::make_unique<Stream>(*this, kComputeStream));
  streams_.push_back(std::make_unique<Stream>(*this, kCommStream));
}

Device::~Device() = default;

void Device::mark_failed() { failed_.store(true, std::memory_order_release); }

void Device::reserve_memory(std::uint64_t bytes, const std::string& what) {
  std::lock_guard lock(memory_mutex_);
  if (memory_used_ + bytes > profile_.memory_bytes) {
    std::ostringstream os;
    os << "device " << rank_ << " (" << profile_.name
       << ") out of memory allocating " << util::format_bytes(bytes)
       << " for '" << what << "': " << util::format_bytes(memory_used_)
       << " already in use of " << util::format_bytes(profile_.memory_bytes);
    throw OutOfMemoryError(os.str());
  }
  memory_used_ += bytes;
  memory_peak_ = std::max(memory_peak_, memory_used_);
}

void Device::release_memory(std::uint64_t bytes) noexcept {
  std::lock_guard lock(memory_mutex_);
  memory_used_ = bytes <= memory_used_ ? memory_used_ - bytes : 0;
}

std::uint64_t Device::memory_used() const {
  std::lock_guard lock(memory_mutex_);
  return memory_used_;
}

std::uint64_t Device::memory_peak() const {
  std::lock_guard lock(memory_mutex_);
  return memory_peak_;
}

void Device::reset_memory_peak() {
  std::lock_guard lock(memory_mutex_);
  memory_peak_ = memory_used_;
}

void Device::synchronize() {
  for (auto& stream : streams_) stream->synchronize();
}

double Device::sim_time() const {
  double t = 0.0;
  for (const auto& stream : streams_) t = std::max(t, stream->sim_time());
  return t;
}

// --------------------------------------------------------- DeviceBuffer --

DeviceBuffer::DeviceBuffer(Device& device, std::size_t elements,
                           std::string name)
    : device_(&device), elements_(elements), name_(std::move(name)) {
  device_->reserve_memory(bytes(), name_);
  if (device_->mode() == ExecutionMode::kReal && elements_ > 0) {
    storage_ = std::make_unique<float[]>(elements_);  // zero-initialized
  }
}

DeviceBuffer::~DeviceBuffer() { release(); }

DeviceBuffer::DeviceBuffer(DeviceBuffer&& other) noexcept
    : device_(other.device_),
      elements_(other.elements_),
      storage_(std::move(other.storage_)),
      name_(std::move(other.name_)) {
  other.device_ = nullptr;
  other.elements_ = 0;
}

DeviceBuffer& DeviceBuffer::operator=(DeviceBuffer&& other) noexcept {
  if (this != &other) {
    release();
    device_ = other.device_;
    elements_ = other.elements_;
    storage_ = std::move(other.storage_);
    name_ = std::move(other.name_);
    other.device_ = nullptr;
    other.elements_ = 0;
  }
  return *this;
}

std::span<float> DeviceBuffer::span() {
  return storage_ ? std::span<float>(storage_.get(), elements_)
                  : std::span<float>();
}

std::span<const float> DeviceBuffer::span() const {
  return storage_ ? std::span<const float>(storage_.get(), elements_)
                  : std::span<const float>();
}

void DeviceBuffer::release() {
  if (device_ != nullptr && elements_ > 0) {
    device_->release_memory(bytes());
  }
  device_ = nullptr;
  elements_ = 0;
  storage_.reset();
}

}  // namespace mggcn::sim
