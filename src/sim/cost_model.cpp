#include "sim/cost_model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mggcn::sim {

double CostModel::effective_gather_bytes(double gather_bytes,
                                         double working_set,
                                         double l2_bytes) {
  if (gather_bytes <= 0.0) return 0.0;
  if (working_set <= 0.0) return gather_bytes;

  // Compulsory traffic: each byte of the working set is fetched from HBM at
  // least once.
  const double compulsory = std::min(working_set, gather_bytes);
  const double reuse_bytes = gather_bytes - compulsory;
  if (reuse_bytes <= 0.0) return gather_bytes;

  // Graph gathers are Zipf-distributed (high-degree vertices are fetched
  // over and over), so a cache holding the resident fraction c/w of the
  // working set serves far more than c/w of the accesses. The Che
  // approximation for power-law popularity gives hit ~ (c/w)^alpha with
  // alpha well below 1; this term is what produces the paper's §6.4
  // super-linear speedups once partitioning shrinks the per-GPU tile.
  constexpr double kZipfExponent = 0.38;
  const double resident = std::clamp(l2_bytes / working_set, 0.0, 1.0);
  const double hit = std::pow(resident, kZipfExponent);
  const double miss_fraction = 1.0 - hit * (1.0 - kL2HitCost);
  return compulsory + reuse_bytes * miss_fraction;
}

double CostModel::seconds(const KernelCost& cost, const DeviceProfile& device,
                          double memory_bandwidth_scale) {
  MGGCN_CHECK(memory_bandwidth_scale > 0.0 && memory_bandwidth_scale <= 1.0);
  const double bw = device.memory_bandwidth * memory_bandwidth_scale;

  const double gather = effective_gather_bytes(
      cost.gather_bytes, cost.gather_working_set,
      static_cast<double>(device.l2_bytes));
  const double memory_time = (cost.stream_bytes + gather) / bw;
  const double compute_time =
      device.peak_flops > 0.0 ? cost.flops / device.peak_flops : 0.0;

  return device.kernel_launch_overhead * cost.launches +
         std::max(memory_time, compute_time);
}

}  // namespace mggcn::sim
