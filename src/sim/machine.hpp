// A simulated multi-GPU machine: N identical devices sharing a trace and an
// interconnect profile.
#pragma once

#include <memory>
#include <vector>

#include "sim/device.hpp"
#include "sim/fault.hpp"
#include "sim/hazard.hpp"
#include "sim/profile.hpp"
#include "sim/trace.hpp"

namespace mggcn::sim {

class Machine {
 public:
  /// `hazard_check` enables the happens-before hazard audit (one
  /// HazardChecker shared by every stream); it defaults to the
  /// MGGCN_HAZARD_CHECK environment variable so CI can switch the whole
  /// test suite on without code changes.
  Machine(MachineProfile profile, int num_devices,
          ExecutionMode mode = ExecutionMode::kReal,
          bool hazard_check = hazard_check_env());

  [[nodiscard]] int num_devices() const {
    return static_cast<int>(devices_.size());
  }
  [[nodiscard]] Device& device(int rank) {
    MGGCN_CHECK_MSG(rank >= 0 && rank < num_devices(), "bad device rank");
    return *devices_[rank];
  }
  [[nodiscard]] const MachineProfile& profile() const { return profile_; }
  [[nodiscard]] ExecutionMode mode() const { return mode_; }
  [[nodiscard]] Trace& trace() { return trace_; }

  /// Null when hazard checking is off.
  [[nodiscard]] HazardChecker* hazard_checker() const { return hazard_.get(); }

  /// Drains every stream of every device.
  void synchronize();

  /// Synchronizes, then advances every stream's simulated clock to the
  /// machine-wide maximum. Returns that time. Use at phase boundaries
  /// (epochs) so per-phase trace queries see a clean cut.
  double align_clocks();

  /// Max simulated time across devices (exact after synchronize()).
  [[nodiscard]] double sim_time() const;

  /// Peak device-memory use across ranks.
  [[nodiscard]] std::uint64_t max_memory_peak() const;
  void reset_memory_peaks();

  /// Attaches a fault-injection schedule (shared so an elastic trainer can
  /// carry consumed-fault state across machine rebuilds). Null = fault-free.
  void set_fault_plan(std::shared_ptr<FaultPlan> plan) {
    fault_plan_ = std::move(plan);
  }
  [[nodiscard]] FaultPlan* fault_plan() const { return fault_plan_.get(); }

  /// Epoch-boundary fault hook, called by the trainer before enqueuing an
  /// epoch: advances the plan clock, marks scheduled device failures (so
  /// the next traced enqueue surfaces DeviceLostError), and records trace
  /// fault events for failures and newly active link degradations.
  void begin_epoch(int epoch);

 private:
  MachineProfile profile_;
  ExecutionMode mode_;
  Trace trace_;
  std::shared_ptr<FaultPlan> fault_plan_;
  std::unique_ptr<HazardChecker> hazard_;  ///< must outlive devices_
  std::vector<std::unique_ptr<Device>> devices_;
};

}  // namespace mggcn::sim
