// A simulated multi-GPU machine: N identical devices sharing a trace and an
// interconnect profile.
#pragma once

#include <memory>
#include <vector>

#include "sim/device.hpp"
#include "sim/profile.hpp"
#include "sim/trace.hpp"

namespace mggcn::sim {

class Machine {
 public:
  Machine(MachineProfile profile, int num_devices,
          ExecutionMode mode = ExecutionMode::kReal);

  [[nodiscard]] int num_devices() const {
    return static_cast<int>(devices_.size());
  }
  [[nodiscard]] Device& device(int rank) {
    MGGCN_CHECK_MSG(rank >= 0 && rank < num_devices(), "bad device rank");
    return *devices_[rank];
  }
  [[nodiscard]] const MachineProfile& profile() const { return profile_; }
  [[nodiscard]] ExecutionMode mode() const { return mode_; }
  [[nodiscard]] Trace& trace() { return trace_; }

  /// Drains every stream of every device.
  void synchronize();

  /// Synchronizes, then advances every stream's simulated clock to the
  /// machine-wide maximum. Returns that time. Use at phase boundaries
  /// (epochs) so per-phase trace queries see a clean cut.
  double align_clocks();

  /// Max simulated time across devices (exact after synchronize()).
  [[nodiscard]] double sim_time() const;

  /// Peak device-memory use across ranks.
  [[nodiscard]] std::uint64_t max_memory_peak() const;
  void reset_memory_peaks();

 private:
  MachineProfile profile_;
  ExecutionMode mode_;
  Trace trace_;
  std::vector<std::unique_ptr<Device>> devices_;
};

}  // namespace mggcn::sim
