#include "sim/hazard.hpp"

#include <algorithm>
#include <cstdlib>

#include "sim/trace.hpp"
#include "util/logging.hpp"

namespace mggcn::sim {

bool clock_leq(const HbClock& a, const HbClock& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::uint64_t bi = i < b.size() ? b[i] : 0;
    if (a[i] > bi) return false;
  }
  return true;
}

void clock_join(HbClock& into, const HbClock& other) {
  if (other.size() > into.size()) into.resize(other.size(), 0);
  for (std::size_t i = 0; i < other.size(); ++i) {
    into[i] = std::max(into[i], other[i]);
  }
}

bool hazard_check_env() {
  const char* env = std::getenv("MGGCN_HAZARD_CHECK");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

int HazardChecker::register_stream() {
  std::lock_guard lock(mutex_);
  return next_slot_++;
}

HbClock HazardChecker::host_clock() const {
  std::lock_guard lock(mutex_);
  return host_clock_;
}

void HazardChecker::join_host_clock(const HbClock& clock) {
  std::lock_guard lock(mutex_);
  clock_join(host_clock_, clock);
}

std::size_t HazardChecker::violation_count() const {
  std::lock_guard lock(mutex_);
  return violations_;
}

void HazardChecker::report(HazardKind kind, const std::string& buffer,
                           const std::string& earlier,
                           const std::string& later) {
  ++violations_;
  MGGCN_LOG(kError) << "hazard: " << hazard_kind_name(kind) << " on '"
                    << buffer << "': '" << later << "' is unordered with '"
                    << earlier << "'";
  if (trace_ != nullptr) {
    trace_->record_hazard(HazardRecord{
        .kind = kind,
        .buffer = buffer,
        .earlier = earlier,
        .later = later,
    });
  }
}

namespace {

/// Two accesses race iff their clocks are incomparable. Checking both
/// directions keeps the verdict independent of the order worker threads
/// happen to deliver tasks to the checker: under schedule fuzzing a
/// collective part can be reported after a task that causally follows it,
/// and a one-directional "ordered after the last write" test would flag
/// that legal schedule.
bool unordered(const HbClock& a, const HbClock& b) {
  return !clock_leq(a, b) && !clock_leq(b, a);
}

}  // namespace

void HazardChecker::on_task(const std::string& label, const HbClock& clock,
                            const std::vector<BufferAccess>& reads,
                            const std::vector<BufferAccess>& writes) {
  std::lock_guard lock(mutex_);
  for (const BufferAccess& access : reads) {
    if (access.buffer == 0) continue;
    BufferState& state = buffers_[access.buffer];
    if (state.name.empty()) state.name = access.name;
    if (state.written && unordered(state.last_write.clock, clock)) {
      report(HazardKind::kReadAfterWrite, state.name, state.last_write.label,
             label);
    }
    state.readers.push_back(Access{clock, label});
  }
  for (const BufferAccess& access : writes) {
    if (access.buffer == 0) continue;
    BufferState& state = buffers_[access.buffer];
    if (state.name.empty()) state.name = access.name;
    if (state.written && unordered(state.last_write.clock, clock)) {
      report(HazardKind::kWriteAfterWrite, state.name, state.last_write.label,
             label);
    }
    for (const Access& reader : state.readers) {
      // A task's own read of a buffer it also writes (in-place kernels)
      // carries the same clock, and equal clocks are ordered.
      if (unordered(reader.clock, clock)) {
        report(HazardKind::kWriteAfterRead, state.name, reader.label, label);
      }
    }
    state.written = true;
    state.last_write = Access{clock, label};
    state.readers.clear();
  }
}

}  // namespace mggcn::sim
