// Execution trace: per-task records on the simulated timeline.
//
// Figs. 5 (operation breakdown), 6 and 8 (per-stage comm/comp timelines) are
// rendered straight from these records.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mggcn::sim {

enum class TaskKind {
  kSpMM,
  kGeMM,
  kActivation,
  kLoss,
  kOptimizer,
  kComm,
  kMemory,   // memsets / copies
  kInspect,  // one-time SpMM plan construction (inspector-executor)
  kSample,   // neighborhood sampling (mini-batch pipeline stage)
  kOther,
};

const char* task_kind_name(TaskKind kind);

/// What a fault-plan event did when it fired (injected fault, retry taken
/// to survive one, or a recovery performed by the elastic trainer).
enum class FaultEventKind {
  kDeviceFailure,    ///< a rank was marked permanently lost
  kTransientComm,    ///< one injected collective failure
  kCommRetry,        ///< one retry a communicator paid to absorb it
  kLinkDegrade,      ///< a bandwidth degradation became active
  kRecovery,         ///< the elastic trainer recovered from a checkpoint
};

const char* fault_event_kind_name(FaultEventKind kind);

/// One fault/recovery event on the simulated timeline. Separate from
/// TraceRecord so the busy-time accounting the figures are built on is not
/// polluted by zero-duration markers.
struct FaultRecord {
  FaultEventKind kind = FaultEventKind::kTransientComm;
  int epoch = 0;
  int device = -1;       ///< affected rank, -1 when machine-wide
  double value = 0.0;    ///< retry backoff seconds / degradation factor
  std::string detail;
};

/// How two unordered accesses to the same buffer conflict.
enum class HazardKind {
  kReadAfterWrite,   ///< a read not ordered after the last write
  kWriteAfterWrite,  ///< a write not ordered after the last write
  kWriteAfterRead,   ///< a write not ordered after a read since that write
};

const char* hazard_kind_name(HazardKind kind);

/// One data-hazard detected by sim::HazardChecker: task `later` accessed
/// `buffer` without a happens-before edge from `earlier`'s conflicting
/// access.
struct HazardRecord {
  HazardKind kind = HazardKind::kReadAfterWrite;
  std::string buffer;
  std::string earlier;
  std::string later;
};

/// Aggregate communication-volume counters for the staged exchanges
/// (core::DistSpmm records one delta per stage at enqueue time, so the
/// counters are deterministic regardless of worker scheduling). Figures
/// and the bench --json artifacts report these alongside the timings.
struct CommVolume {
  /// Bytes actually moved over the interconnect.
  std::uint64_t wire_bytes = 0;
  /// Portion of wire_bytes that crossed a node boundary (0 on single-node
  /// machines).
  std::uint64_t wire_bytes_inter = 0;
  /// Bytes the same stages would have moved as full-block broadcasts.
  std::uint64_t dense_bytes = 0;
  /// Per-destination pack operations performed by compacted exchanges.
  std::uint64_t packs = 0;
  /// Stage counts by chosen exchange path.
  std::uint64_t compact_stages = 0;
  std::uint64_t dense_stages = 0;

  /// Wire bytes avoided relative to all-dense broadcasts.
  [[nodiscard]] std::uint64_t bytes_saved() const {
    return dense_bytes - wire_bytes;
  }

  CommVolume& operator+=(const CommVolume& o) {
    wire_bytes += o.wire_bytes;
    wire_bytes_inter += o.wire_bytes_inter;
    dense_bytes += o.dense_bytes;
    packs += o.packs;
    compact_stages += o.compact_stages;
    dense_stages += o.dense_stages;
    return *this;
  }
};

/// Aggregate strategy-selection counters for the distributed products
/// (core::Planner records one delta per product at enqueue time, like
/// CommVolume). `products_*` count executed products by strategy;
/// `decisions` counts fresh auto-mode pricings (cache misses);
/// `fallbacks` counts products where the requested/chosen strategy was
/// infeasible (odd rank count, replica would not fit) and 1D ran instead.
struct PlanCounters {
  std::uint64_t products_1d = 0;
  std::uint64_t products_15d = 0;
  std::uint64_t products_replicated = 0;
  std::uint64_t decisions = 0;
  std::uint64_t fallbacks = 0;

  PlanCounters& operator+=(const PlanCounters& o) {
    products_1d += o.products_1d;
    products_15d += o.products_15d;
    products_replicated += o.products_replicated;
    decisions += o.decisions;
    fallbacks += o.fallbacks;
    return *this;
  }
};

/// Aggregate sampled-pipeline counters (core::SampledPipeline records one
/// delta per round at enqueue time, like CommVolume, so the counters are
/// deterministic regardless of worker scheduling). `*_seconds` are the
/// cost-model-priced busy seconds of each stage summed over devices — the
/// per-stage occupancy the bench --json artifacts report; cache_* count the
/// per-device feature-cache outcomes of the extraction stage.
struct PipelineCounters {
  /// Pipeline rounds executed (one mini-batch per device per round).
  std::uint64_t rounds = 0;
  /// Per-device mini-batches trained (rounds * devices).
  std::uint64_t batches = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  double sample_seconds = 0.0;
  double extract_seconds = 0.0;
  double train_seconds = 0.0;

  PipelineCounters& operator+=(const PipelineCounters& o) {
    rounds += o.rounds;
    batches += o.batches;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    cache_evictions += o.cache_evictions;
    sample_seconds += o.sample_seconds;
    extract_seconds += o.extract_seconds;
    train_seconds += o.train_seconds;
    return *this;
  }
};

/// Aggregate inference-serving counters (core::InferenceServer records one
/// delta per micro-batch at enqueue time, like PipelineCounters, so the
/// counters are deterministic regardless of worker scheduling). Latency
/// percentiles are computed by the server from per-request completion
/// times; these totals feed the EpochStats-style serve_* fields and the
/// bench --json artifacts.
struct ServeCounters {
  /// Queries served (one node-classification request each).
  std::uint64_t requests = 0;
  /// Micro-batches executed.
  std::uint64_t batches = 0;
  /// Embedding-tier cache outcomes of the gather stage.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Simulated graph-update events processed, and cached rows they evicted.
  std::uint64_t graph_updates = 0;
  std::uint64_t invalidations = 0;
  /// Cost-model-priced busy seconds of the gather (local + cache + remote
  /// pull) and inference (SpMM/GeMM) stages, summed over batches.
  double gather_seconds = 0.0;
  double infer_seconds = 0.0;

  ServeCounters& operator+=(const ServeCounters& o) {
    requests += o.requests;
    batches += o.batches;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    graph_updates += o.graph_updates;
    invalidations += o.invalidations;
    gather_seconds += o.gather_seconds;
    infer_seconds += o.infer_seconds;
    return *this;
  }
};

/// Aggregate workspace-pool counters (mem::WorkspacePool records one delta
/// per allocator operation at enqueue time, like PipelineCounters, so the
/// counters are deterministic regardless of worker scheduling). Sums
/// accumulate; the *_peak fields and fragmentation_peak are high-water
/// marks and merge by max. release_underflows counts Device::release_memory
/// accounting underflows (a double release / leaked ledger) so benches and
/// tests can assert the books balanced.
struct PoolCounters {
  /// High-water of device bytes reserved by pool slabs (max over devices).
  std::uint64_t reserved_peak_bytes = 0;
  /// High-water of bytes inside live PooledBuffer leases (max over devices).
  std::uint64_t in_use_peak_bytes = 0;
  /// Acquires served from the free lists instead of a fresh slab.
  std::uint64_t reuse_hits = 0;
  std::uint64_t slab_allocs = 0;
  std::uint64_t splits = 0;
  std::uint64_t coalesces = 0;
  /// Wholly-free slabs released back to the device ledger before growing.
  std::uint64_t trims = 0;
  /// High-water of the unusable-free fraction: free bytes outside the
  /// largest free block, over all free bytes (0 = every free byte is one
  /// contiguous block per slab).
  double fragmentation_peak = 0.0;
  /// Device::release_memory underflows (accounting corruption; see the
  /// device ledger satellite).
  std::uint64_t release_underflows = 0;

  PoolCounters& operator+=(const PoolCounters& o) {
    reserved_peak_bytes = std::max(reserved_peak_bytes, o.reserved_peak_bytes);
    in_use_peak_bytes = std::max(in_use_peak_bytes, o.in_use_peak_bytes);
    reuse_hits += o.reuse_hits;
    slab_allocs += o.slab_allocs;
    splits += o.splits;
    coalesces += o.coalesces;
    trims += o.trims;
    fragmentation_peak = std::max(fragmentation_peak, o.fragmentation_peak);
    release_underflows += o.release_underflows;
    return *this;
  }
};

struct TraceRecord {
  int device = 0;
  int stream = 0;
  TaskKind kind = TaskKind::kOther;
  std::string label;
  /// Stage index for staged SpMM (-1 when not applicable).
  int stage = -1;
  /// Simulated begin/end in seconds.
  double t_begin = 0.0;
  double t_end = 0.0;

  [[nodiscard]] double duration() const { return t_end - t_begin; }
};

/// Thread-safe append-only trace.
class Trace {
 public:
  void record(TraceRecord rec);
  void record_fault(FaultRecord rec);
  void record_hazard(HazardRecord rec);
  /// Accumulates one stage's communication volume.
  void record_comm_volume(const CommVolume& delta);
  /// Accumulates one distributed product's strategy-selection counters.
  void record_plan(const PlanCounters& delta);
  /// Accumulates one sampled-pipeline round's stage/cache counters.
  void record_pipeline(const PipelineCounters& delta);
  /// Accumulates one served micro-batch's request/cache counters.
  void record_serve(const ServeCounters& delta);
  /// Accumulates one workspace-pool operation's counters (sums add,
  /// high-water fields merge by max).
  void record_pool(const PoolCounters& delta);
  void clear();

  [[nodiscard]] std::vector<TraceRecord> records() const;

  /// All fault/recovery events recorded so far, in firing order.
  [[nodiscard]] std::vector<FaultRecord> fault_records() const;

  /// Hazards reported by the machine's HazardChecker, in detection order.
  [[nodiscard]] std::vector<HazardRecord> hazard_records() const;
  [[nodiscard]] std::size_t hazard_count() const;

  /// Running communication-volume totals (snapshot; per-epoch figures
  /// difference two snapshots).
  [[nodiscard]] CommVolume comm_volume() const;

  /// Running strategy-selection totals (snapshot; per-epoch figures
  /// difference two snapshots).
  [[nodiscard]] PlanCounters plan_counters() const;

  /// Running sampled-pipeline totals (snapshot; per-epoch figures
  /// difference two snapshots).
  [[nodiscard]] PipelineCounters pipeline_counters() const;

  /// Running inference-serving totals (snapshot; per-window stats
  /// difference two snapshots).
  [[nodiscard]] ServeCounters serve_counters() const;

  /// Running workspace-pool totals (snapshot; per-epoch stats difference
  /// the additive fields and read the high-water fields directly).
  [[nodiscard]] PoolCounters pool_counters() const;

  /// Number of fault events of `kind` (optionally restricted to one epoch).
  [[nodiscard]] std::size_t fault_count(FaultEventKind kind,
                                        int epoch = -1) const;

  /// Total simulated busy time per kind, over records with t_begin >= since.
  [[nodiscard]] std::map<TaskKind, double> busy_by_kind(
      double since = 0.0) const;

  /// Records of a single device, sorted by t_begin.
  [[nodiscard]] std::vector<TraceRecord> device_records(
      int device, double since = 0.0) const;

  /// Renders an ASCII Gantt chart of [t0, t1] per device, one row per
  /// (device, stream); used by the Fig. 6 / Fig. 8 benches.
  [[nodiscard]] std::string render_timeline(double t0, double t1,
                                            int width = 96) const;

  /// Writes the trace as a Chrome-tracing ("catapult") JSON file; open it
  /// at chrome://tracing or in Perfetto. Devices map to processes, streams
  /// to threads, simulated microseconds to timestamps.
  void export_chrome_json(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceRecord> records_;
  std::vector<FaultRecord> fault_records_;
  std::vector<HazardRecord> hazard_records_;
  CommVolume comm_volume_;
  PlanCounters plan_counters_;
  PipelineCounters pipeline_counters_;
  ServeCounters serve_counters_;
  PoolCounters pool_counters_;
};

/// Escapes `s` for embedding inside a JSON string literal: quotes,
/// backslashes, and control characters (the latter as \uXXXX).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace mggcn::sim
