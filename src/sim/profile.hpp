// Hardware profiles for the simulated machines.
//
// The reproduction targets the two systems of the paper's §6: NVIDIA DGX-1
// (8x V100-32GB, hybrid cube-mesh NVLink, 6 links/GPU) and NVIDIA DGX-A100
// (8x A100-80GB, NVSwitch, 12 links/GPU), plus the Intel Xeon 9242 sockets
// used by the DistGNN comparison (Table 2). All numbers below come from the
// paper's hardware description or public spec sheets.
#pragma once

#include <cstdint>
#include <string>

namespace mggcn::sim {

/// Per-accelerator capability description; consumed by the cost model.
struct DeviceProfile {
  std::string name;

  /// HBM capacity in bytes; allocations past this throw OutOfMemoryError.
  std::uint64_t memory_bytes = 0;

  /// Global memory (HBM) bandwidth, bytes/second.
  double memory_bandwidth = 0.0;

  /// Last-level cache capacity in bytes. Drives the SpMM gather-reuse term
  /// responsible for the paper's super-linear speedups (§6.4).
  std::uint64_t l2_bytes = 0;

  /// Effective fp32 throughput, FLOP/s.
  double peak_flops = 0.0;

  /// Per-kernel launch latency in seconds. Dominates tiny graphs (Cora),
  /// matching the paper's observation that small datasets become
  /// GeMM/overhead bound (§6.1).
  double kernel_launch_overhead = 0.0;
};

enum class InterconnectKind {
  kCubeMesh,   ///< DGX-1: asymmetric hybrid cube mesh, point-to-point links.
  kSwitch,     ///< DGX-A100: NVSwitch, full bandwidth between any pair.
  kHostFabric  ///< CPU cluster fabric (DistGNN's HDR InfiniBand).
};

struct InterconnectProfile {
  InterconnectKind kind = InterconnectKind::kSwitch;

  /// NVLink links per GPU.
  int links_per_device = 0;

  /// Per-link, per-direction bandwidth in bytes/second.
  double link_bandwidth = 0.0;

  /// Fraction of theoretical collective bandwidth actually achieved
  /// (protocol efficiency; lower for the NCCL 2.4 used by CAGNET).
  double efficiency = 0.9;

  /// Multi-node clusters (the paper's future work; also how CAGNET's
  /// beyond-one-node stall is modeled): devices per node (0 = single
  /// node) and the per-node inter-node fabric bandwidth in bytes/s.
  /// Collectives spanning several nodes are bottlenecked by this fabric.
  int devices_per_node = 0;
  double internode_bandwidth = 0.0;

  /// Fixed per-message latency of any collective call (protocol setup).
  /// An extensive quantity under the replica-scaling methodology: blocks
  /// shrink by the scale factor, so the latency must shrink with them or
  /// replica-scale simulations would be alpha-bound in configurations the
  /// full-scale machine is not (see sim::scale_profile).
  double base_latency = 4e-6;

  /// Aggregate one-direction bandwidth available to a collective rooted at
  /// a single device: the paper's own model (§5.1) uses
  /// links_per_device * link_bandwidth.
  [[nodiscard]] double collective_bandwidth() const {
    return links_per_device * link_bandwidth * efficiency;
  }
};

/// A whole machine: identical devices plus an interconnect.
struct MachineProfile {
  std::string name;
  DeviceProfile device;
  InterconnectProfile interconnect;
  int max_devices = 8;
};

/// DGX-1 ("DGX-V100" in the paper): 8x V100 32GB, 900 GB/s HBM2, 6MB L2,
/// ~14 TFLOP/s fp32, 6 NVLink2 links x 25 GB/s/direction.
MachineProfile dgx_v100();

/// DGX-A100: 8x A100 80GB, 2 TB/s HBM2e, 40MB L2, ~19.5 TFLOP/s fp32,
/// 12 NVLink3 links through NVSwitch (600 GB/s bidirectional per pair).
MachineProfile dgx_a100();

/// One dual-socket node of DistGNN's cluster: Intel Xeon Platinum 9242
/// (48 cores/socket), treated per-socket as in Table 2. HDR InfiniBand.
MachineProfile xeon_9242_cluster();

/// A cluster of DGX-A100 nodes connected by HDR InfiniBand (200 Gb/s per
/// node): the multi-GPU-cluster setting of the paper's future work, and
/// the regime where CAGNET observed that "none of the proposed algorithms
/// can achieve speedup beyond a single node".
MachineProfile dgx_a100_cluster(int nodes);

/// Looks up a machine profile by name ("dgx-v100", "dgx-a100",
/// "xeon-9242"); throws InvalidArgumentError otherwise.
MachineProfile machine_by_name(const std::string& name);

/// Profile for simulating a 1/scale structure replica of a workload:
/// divides the extensive quantities (HBM and L2 capacity, kernel launch
/// overhead) by `scale` so that every cost-model term is exactly 1/scale of
/// its full-scale value — `sim_seconds * scale` then reproduces the
/// full-scale estimate, and OOM appears for exactly the configurations that
/// would OOM at full scale. `invariant_bytes` is the per-device footprint
/// that does NOT shrink with the graph (replicated weights + optimizer
/// state); it is charged at its true size.
MachineProfile scale_profile(MachineProfile profile, double scale,
                             std::uint64_t invariant_bytes = 0);

}  // namespace mggcn::sim
