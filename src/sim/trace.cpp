#include "sim/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/format.hpp"

namespace mggcn::sim {

const char* task_kind_name(TaskKind kind) {
  switch (kind) {
    case TaskKind::kSpMM: return "SpMM";
    case TaskKind::kGeMM: return "GeMM";
    case TaskKind::kActivation: return "Activation";
    case TaskKind::kLoss: return "Loss-Layer";
    case TaskKind::kOptimizer: return "Adam";
    case TaskKind::kComm: return "Comm";
    case TaskKind::kMemory: return "Memory";
    case TaskKind::kInspect: return "Inspect";
    case TaskKind::kSample: return "Sample";
    case TaskKind::kOther: return "Other";
  }
  return "?";
}

const char* fault_event_kind_name(FaultEventKind kind) {
  switch (kind) {
    case FaultEventKind::kDeviceFailure: return "device-failure";
    case FaultEventKind::kTransientComm: return "transient-comm";
    case FaultEventKind::kCommRetry: return "comm-retry";
    case FaultEventKind::kLinkDegrade: return "link-degrade";
    case FaultEventKind::kRecovery: return "recovery";
  }
  return "?";
}

const char* hazard_kind_name(HazardKind kind) {
  switch (kind) {
    case HazardKind::kReadAfterWrite: return "read-after-write";
    case HazardKind::kWriteAfterWrite: return "write-after-write";
    case HazardKind::kWriteAfterRead: return "write-after-read";
  }
  return "?";
}

void Trace::record(TraceRecord rec) {
  std::lock_guard lock(mutex_);
  records_.push_back(std::move(rec));
}

void Trace::record_fault(FaultRecord rec) {
  std::lock_guard lock(mutex_);
  fault_records_.push_back(std::move(rec));
}

void Trace::record_hazard(HazardRecord rec) {
  std::lock_guard lock(mutex_);
  hazard_records_.push_back(std::move(rec));
}

void Trace::record_comm_volume(const CommVolume& delta) {
  std::lock_guard lock(mutex_);
  comm_volume_ += delta;
}

CommVolume Trace::comm_volume() const {
  std::lock_guard lock(mutex_);
  return comm_volume_;
}

void Trace::record_plan(const PlanCounters& delta) {
  std::lock_guard lock(mutex_);
  plan_counters_ += delta;
}

PlanCounters Trace::plan_counters() const {
  std::lock_guard lock(mutex_);
  return plan_counters_;
}

void Trace::record_pipeline(const PipelineCounters& delta) {
  std::lock_guard lock(mutex_);
  pipeline_counters_ += delta;
}

PipelineCounters Trace::pipeline_counters() const {
  std::lock_guard lock(mutex_);
  return pipeline_counters_;
}

void Trace::record_serve(const ServeCounters& delta) {
  std::lock_guard lock(mutex_);
  serve_counters_ += delta;
}

ServeCounters Trace::serve_counters() const {
  std::lock_guard lock(mutex_);
  return serve_counters_;
}

void Trace::record_pool(const PoolCounters& delta) {
  std::lock_guard lock(mutex_);
  pool_counters_ += delta;
}

PoolCounters Trace::pool_counters() const {
  std::lock_guard lock(mutex_);
  return pool_counters_;
}

void Trace::clear() {
  std::lock_guard lock(mutex_);
  records_.clear();
  fault_records_.clear();
  hazard_records_.clear();
  comm_volume_ = CommVolume{};
  plan_counters_ = PlanCounters{};
  pipeline_counters_ = PipelineCounters{};
  serve_counters_ = ServeCounters{};
  pool_counters_ = PoolCounters{};
}

std::vector<HazardRecord> Trace::hazard_records() const {
  std::lock_guard lock(mutex_);
  return hazard_records_;
}

std::size_t Trace::hazard_count() const {
  std::lock_guard lock(mutex_);
  return hazard_records_.size();
}

std::vector<FaultRecord> Trace::fault_records() const {
  std::lock_guard lock(mutex_);
  return fault_records_;
}

std::size_t Trace::fault_count(FaultEventKind kind, int epoch) const {
  std::lock_guard lock(mutex_);
  std::size_t count = 0;
  for (const auto& rec : fault_records_) {
    if (rec.kind == kind && (epoch < 0 || rec.epoch == epoch)) ++count;
  }
  return count;
}

std::vector<TraceRecord> Trace::records() const {
  std::lock_guard lock(mutex_);
  return records_;
}

std::map<TaskKind, double> Trace::busy_by_kind(double since) const {
  std::lock_guard lock(mutex_);
  std::map<TaskKind, double> out;
  for (const auto& rec : records_) {
    if (rec.t_begin < since) continue;
    out[rec.kind] += rec.duration();
  }
  return out;
}

std::vector<TraceRecord> Trace::device_records(int device, double since) const {
  std::lock_guard lock(mutex_);
  std::vector<TraceRecord> out;
  for (const auto& rec : records_) {
    if (rec.device == device && rec.t_begin >= since) out.push_back(rec);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.t_begin < b.t_begin;
  });
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void Trace::export_chrome_json(const std::string& path) const {
  std::ofstream os(path, std::ios::trunc);
  if (!os.is_open()) return;
  os << "[\n";
  bool first = true;
  for (const auto& rec : records()) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"name\": \"" << json_escape(rec.label) << "\", \"cat\": \""
       << json_escape(task_kind_name(rec.kind))
       << "\", \"ph\": \"X\", \"pid\": " << rec.device
       << ", \"tid\": " << rec.stream << ", \"ts\": " << rec.t_begin * 1e6
       << ", \"dur\": " << rec.duration() * 1e6;
    if (rec.stage >= 0) {
      os << ", \"args\": {\"stage\": " << rec.stage << '}';
    }
    os << '}';
  }
  os << "\n]\n";
}

std::string Trace::render_timeline(double t0, double t1, int width) const {
  std::vector<TraceRecord> recs = records();
  std::sort(recs.begin(), recs.end(), [](const auto& a, const auto& b) {
    return std::tie(a.device, a.stream, a.t_begin) <
           std::tie(b.device, b.stream, b.t_begin);
  });

  int max_device = -1;
  int max_stream = 0;
  for (const auto& r : recs) {
    max_device = std::max(max_device, r.device);
    max_stream = std::max(max_stream, r.stream);
  }
  if (max_device < 0 || t1 <= t0) return "(empty trace)\n";

  const double span = t1 - t0;
  std::ostringstream os;
  os << "timeline [" << util::format_seconds(t0) << ", "
     << util::format_seconds(t1) << "], '#'=compute, '='=comm, digits=stage\n";
  for (int dev = 0; dev <= max_device; ++dev) {
    for (int stream = 0; stream <= max_stream; ++stream) {
      std::string row(width, '.');
      bool any = false;
      for (const auto& r : recs) {
        if (r.device != dev || r.stream != stream) continue;
        if (r.t_end <= t0 || r.t_begin >= t1) continue;
        any = true;
        const int b = std::clamp(
            static_cast<int>((r.t_begin - t0) / span * width), 0, width - 1);
        const int e = std::clamp(
            static_cast<int>((r.t_end - t0) / span * width), b + 1, width);
        const char fill = r.kind == TaskKind::kComm ? '=' : '#';
        for (int i = b; i < e; ++i) row[i] = fill;
        if (r.stage >= 0 && r.stage <= 9) {
          row[b] = static_cast<char>('0' + r.stage);
        }
      }
      if (!any && stream > 0) continue;
      os << "GPU " << dev << " s" << stream << " |" << row << "|\n";
    }
  }
  return os.str();
}

}  // namespace mggcn::sim
