#include "sim/fault.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace mggcn::sim {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDeviceFailure: return "device-failure";
    case FaultKind::kTransientComm: return "transient-comm";
    case FaultKind::kLinkDegrade: return "link-degrade";
  }
  return "?";
}

FaultPlan& FaultPlan::add(FaultSpec spec) {
  MGGCN_CHECK_MSG(spec.epoch >= 0, "fault epoch must be non-negative");
  MGGCN_CHECK_MSG(spec.count > 0, "fault count must be positive");
  switch (spec.kind) {
    case FaultKind::kDeviceFailure:
      MGGCN_CHECK_MSG(spec.device >= 0, "device failure needs a target rank");
      break;
    case FaultKind::kTransientComm:
      break;
    case FaultKind::kLinkDegrade:
      MGGCN_CHECK_MSG(spec.severity > 0.0 && spec.severity <= 1.0,
                      "degradation severity must be in (0, 1]");
      break;
  }
  State state;
  state.spec = spec;
  state.remaining = spec.kind == FaultKind::kTransientComm ? spec.count : 0;
  specs_.push_back(state);
  return *this;
}

namespace {

std::string trim(const std::string& s) {
  const std::size_t first = s.find_first_not_of(" \t");
  if (first == std::string::npos) return "";
  const std::size_t last = s.find_last_not_of(" \t");
  return s.substr(first, last - first + 1);
}

std::vector<std::string> split(const std::string& text, const char* seps) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t end = text.find_first_of(seps, begin);
    const std::string token = trim(
        text.substr(begin, end == std::string::npos ? end : end - begin));
    if (!token.empty()) out.push_back(token);
    if (end == std::string::npos) break;
    begin = end + 1;
  }
  return out;
}

int parse_int(const std::string& s, const std::string& token) {
  try {
    std::size_t used = 0;
    const int value = std::stoi(s, &used);
    MGGCN_CHECK_MSG(used == s.size(), "bad fault spec: " + token);
    return value;
  } catch (const std::logic_error&) {
    throw InvalidArgumentError("bad fault spec: " + token);
  }
}

double parse_double(const std::string& s, const std::string& token) {
  try {
    std::size_t used = 0;
    const double value = std::stod(s, &used);
    MGGCN_CHECK_MSG(used == s.size(), "bad fault spec: " + token);
    return value;
  } catch (const std::logic_error&) {
    throw InvalidArgumentError("bad fault spec: " + token);
  }
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  for (const std::string& token : split(text, ";,")) {
    const std::size_t colon = token.find(':');
    const std::size_t at = token.find('@');
    MGGCN_CHECK_MSG(colon != std::string::npos && at != std::string::npos &&
                        colon < at,
                    "bad fault spec (want kind:arg@epoch): " + token);
    const std::string kind = token.substr(0, colon);
    const std::string arg = token.substr(colon + 1, at - colon - 1);
    std::string epoch_part = token.substr(at + 1);

    FaultSpec spec;
    const std::size_t x = epoch_part.find('x');
    if (x != std::string::npos) {
      spec.count = parse_int(epoch_part.substr(x + 1), token);
      epoch_part = epoch_part.substr(0, x);
    }
    spec.epoch = parse_int(epoch_part, token);

    if (kind == "kill") {
      spec.kind = FaultKind::kDeviceFailure;
      spec.device = parse_int(arg, token);
    } else if (kind == "flaky") {
      spec.kind = FaultKind::kTransientComm;
      spec.count = parse_int(arg, token);
    } else if (kind == "degrade") {
      spec.kind = FaultKind::kLinkDegrade;
      spec.severity = parse_double(arg, token);
    } else {
      throw InvalidArgumentError("unknown fault kind '" + kind +
                                 "' in: " + token);
    }
    plan.add(spec);
  }
  return plan;
}

FaultPlan FaultPlan::random(std::uint64_t seed, int epochs, int devices,
                            const RandomRates& rates) {
  MGGCN_CHECK(epochs >= 0 && devices > 0);
  util::Rng rng(seed ^ 0xfa017a0107ULL);
  FaultPlan plan;
  for (int e = 0; e < epochs; ++e) {
    if (rates.device_failure > 0.0 && rng.bernoulli(rates.device_failure)) {
      FaultSpec spec;
      spec.kind = FaultKind::kDeviceFailure;
      spec.epoch = e;
      spec.device =
          static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(devices)));
      plan.add(spec);
    }
    if (rates.transient > 0.0 && rng.bernoulli(rates.transient)) {
      FaultSpec spec;
      spec.kind = FaultKind::kTransientComm;
      spec.epoch = e;
      spec.count = 1 + static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(
                           std::max(1, rates.transient_burst))));
      plan.add(spec);
    }
    if (rates.degrade > 0.0 && rng.bernoulli(rates.degrade)) {
      FaultSpec spec;
      spec.kind = FaultKind::kLinkDegrade;
      spec.epoch = e;
      spec.count = std::max(1, rates.degrade_epochs);
      spec.severity = rates.degrade_severity;
      plan.add(spec);
    }
  }
  return plan;
}

void FaultPlan::begin_epoch(int epoch) {
  MGGCN_CHECK_MSG(epoch >= 0, "epoch must be non-negative");
  epoch_ = epoch;
}

int FaultPlan::take_device_failure() {
  for (auto& state : specs_) {
    if (state.spec.kind != FaultKind::kDeviceFailure || state.consumed ||
        state.spec.epoch > epoch_) {
      continue;
    }
    state.consumed = true;
    return state.spec.device;
  }
  return -1;
}

bool FaultPlan::take_transient_failure() {
  for (auto& state : specs_) {
    if (state.spec.kind != FaultKind::kTransientComm || state.remaining <= 0 ||
        state.spec.epoch != epoch_) {
      continue;
    }
    --state.remaining;
    return true;
  }
  return false;
}

double FaultPlan::link_bandwidth_scale() const {
  double scale = 1.0;
  for (const auto& state : specs_) {
    const FaultSpec& spec = state.spec;
    if (spec.kind == FaultKind::kLinkDegrade && epoch_ >= spec.epoch &&
        epoch_ < spec.epoch + spec.count) {
      scale *= spec.severity;
    }
  }
  return std::max(scale, 1e-6);
}

std::vector<FaultSpec> FaultPlan::take_newly_degraded() {
  std::vector<FaultSpec> out;
  for (auto& state : specs_) {
    if (state.spec.kind == FaultKind::kLinkDegrade && !state.consumed &&
        state.spec.epoch == epoch_) {
      state.consumed = true;
      out.push_back(state.spec);
    }
  }
  return out;
}

std::vector<FaultSpec> FaultPlan::specs() const {
  std::vector<FaultSpec> out;
  out.reserve(specs_.size());
  for (const auto& state : specs_) out.push_back(state.spec);
  return out;
}

std::string FaultPlan::describe() const {
  if (specs_.empty()) return "(no faults)";
  std::ostringstream os;
  bool first = true;
  for (const auto& state : specs_) {
    const FaultSpec& spec = state.spec;
    if (!first) os << "; ";
    first = false;
    switch (spec.kind) {
      case FaultKind::kDeviceFailure:
        os << "kill rank " << spec.device << " @ epoch " << spec.epoch;
        break;
      case FaultKind::kTransientComm:
        os << "flaky x" << spec.count << " @ epoch " << spec.epoch;
        break;
      case FaultKind::kLinkDegrade:
        os << "degrade x" << spec.severity << " @ epochs [" << spec.epoch
           << ", " << spec.epoch + spec.count << ")";
        break;
    }
  }
  return os.str();
}

}  // namespace mggcn::sim
