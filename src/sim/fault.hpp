// Deterministic fault injection for the simulated machine.
//
// A FaultPlan is a schedule of fault events — permanent device failures,
// transient collective failures, and link-bandwidth degradation — keyed by
// epoch. The schedule is fixed up front (parsed from a CLI spec or drawn
// from a seeded RNG), so a given plan reproduces the same faults
// bit-for-bit, which is what lets the recovery tests assert exact loss
// trajectories. Consumers:
//
//   Machine::begin_epoch(e)    advances the plan clock, marks scheduled
//                              devices failed, records trace fault events.
//   Communicator::launch       consumes transient-failure budget (each unit
//                              is one failed attempt that retry-with-backoff
//                              must absorb) and applies the current link
//                              degradation to collective durations.
//   core::ElasticTrainer       reacts to the surfaced DeviceLostError /
//                              CommError by recovering from checkpoint.
//
// Fired events are consumed exactly once: when a recovery replays epochs,
// the replay does not re-trigger the faults that caused it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mggcn::sim {

enum class FaultKind {
  kDeviceFailure,  ///< permanent: the target rank is lost at the epoch
  kTransientComm,  ///< `count` consecutive collective attempts fail
  kLinkDegrade,    ///< bandwidth multiplier `severity` for `count` epochs
};

const char* fault_kind_name(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kTransientComm;
  /// Epoch at which the fault fires (degradation: first active epoch).
  int epoch = 0;
  /// Target rank for device failures (current rank numbering).
  int device = -1;
  /// Transient: consecutive failed attempts. Degradation: active epochs.
  int count = 1;
  /// Degradation: link-bandwidth multiplier in (0, 1].
  double severity = 0.5;
};

/// Host-thread-only (all consultation happens while enqueuing work).
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& add(FaultSpec spec);

  /// Parses a semicolon/comma-separated CLI schedule:
  ///   kill:R@E          rank R permanently fails at epoch E
  ///   flaky:N@E         N consecutive collective attempts fail at epoch E
  ///   degrade:S@E       link bandwidth multiplied by S during epoch E
  ///   degrade:S@ExD     ... for D consecutive epochs
  /// e.g. "kill:2@5;flaky:2@3;degrade:0.25@7x4". Empty string = no faults.
  static FaultPlan parse(const std::string& text);

  /// Per-epoch probabilities for a randomly drawn schedule.
  struct RandomRates {
    double device_failure = 0.0;
    double transient = 0.0;
    double degrade = 0.0;
    int transient_burst = 2;       ///< max consecutive transient failures
    double degrade_severity = 0.5;
    int degrade_epochs = 2;
  };

  /// Draws a deterministic schedule over `epochs` x `devices` from `seed`.
  static FaultPlan random(std::uint64_t seed, int epochs, int devices,
                          const RandomRates& rates);

  /// Advances the plan clock. Epochs may repeat (recovery replays) or skip
  /// forward; fired events stay consumed either way.
  void begin_epoch(int epoch);
  [[nodiscard]] int current_epoch() const { return epoch_; }

  /// Rank scheduled to fail at (or before) the current epoch, -1 if none.
  /// Consumes the event; call repeatedly to drain coinciding failures.
  [[nodiscard]] int take_device_failure();

  /// Consumes one unit of the current epoch's transient-failure budget.
  /// Returns true while injected attempts remain (the communicator turns
  /// each unit into one failed attempt of its retry loop).
  [[nodiscard]] bool take_transient_failure();

  /// Product of the bandwidth multipliers of all degradations active at
  /// the current epoch (1.0 when none).
  [[nodiscard]] double link_bandwidth_scale() const;

  /// Degradations that become active exactly at the current epoch (for
  /// trace recording); consumed.
  [[nodiscard]] std::vector<FaultSpec> take_newly_degraded();

  [[nodiscard]] bool empty() const { return specs_.empty(); }
  [[nodiscard]] std::size_t size() const { return specs_.size(); }
  [[nodiscard]] std::vector<FaultSpec> specs() const;

  /// One-line human-readable schedule (bench/log output).
  [[nodiscard]] std::string describe() const;

 private:
  struct State {
    FaultSpec spec;
    bool consumed = false;  ///< device failure fired / degrade announced
    int remaining = 0;      ///< transient: unconsumed failed attempts
  };

  std::vector<State> specs_;
  int epoch_ = -1;
};

}  // namespace mggcn::sim
