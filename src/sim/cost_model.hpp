// Analytic kernel cost model.
//
// Every task enqueued on a simulated stream carries a KernelCost descriptor;
// the cost model converts it into simulated seconds for the device profile.
// The model is a roofline with three refinements that the paper's evaluation
// depends on:
//
//   1. a gather term with an L2-reuse factor — SpMM reads nnz*d*4 bytes of
//      feature rows at random; when the tile's source working set fits in L2
//      most of that traffic hits cache. Narrower tiles (more GPUs) shrink
//      the working set, producing the super-linear speedups of Fig. 9;
//   2. per-kernel launch overhead — dominates tiny graphs (Cora, Fig. 5);
//   3. a memory-bandwidth scale < 1 applied while communication overlaps
//      compute, reflecting that NVLink traffic steals HBM bandwidth
//      (the paper measures a ~1/6 loss on V100, §6.3).
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/profile.hpp"

namespace mggcn::sim {

/// Cost descriptor for one kernel launch.
struct KernelCost {
  /// Bytes streamed sequentially (reads + writes at full bandwidth).
  double stream_bytes = 0.0;

  /// Bytes gathered at random from a region of `gather_working_set` bytes
  /// (SpMM feature-row loads).
  double gather_bytes = 0.0;
  double gather_working_set = 0.0;

  /// Floating-point operations.
  double flops = 0.0;

  /// Number of underlying kernel launches (eager frameworks pay several).
  int launches = 1;

  KernelCost& operator+=(const KernelCost& o) {
    stream_bytes += o.stream_bytes;
    gather_bytes += o.gather_bytes;
    gather_working_set = std::max(gather_working_set, o.gather_working_set);
    flops += o.flops;
    launches += o.launches;
    return *this;
  }
};

class CostModel {
 public:
  /// Residual miss cost for gathers that hit L2 (L2 is fast, not free).
  static constexpr double kL2HitCost = 0.08;

  /// Simulated duration of a kernel described by `cost` on `device`.
  /// `memory_bandwidth_scale` in (0,1] models HBM contention from
  /// concurrent communication.
  [[nodiscard]] static double seconds(const KernelCost& cost,
                                      const DeviceProfile& device,
                                      double memory_bandwidth_scale = 1.0);

  /// The gather traffic that actually reaches HBM after L2 reuse.
  [[nodiscard]] static double effective_gather_bytes(
      double gather_bytes, double working_set, double l2_bytes);
};

}  // namespace mggcn::sim
