#include "sim/machine.hpp"

#include <algorithm>

namespace mggcn::sim {

Machine::Machine(MachineProfile profile, int num_devices, ExecutionMode mode,
                 bool hazard_check)
    : profile_(std::move(profile)), mode_(mode) {
  MGGCN_CHECK_MSG(num_devices > 0, "machine needs at least one device");
  MGGCN_CHECK_MSG(num_devices <= profile_.max_devices,
                  "machine profile does not have that many devices");
  if (hazard_check) hazard_ = std::make_unique<HazardChecker>(&trace_);
  devices_.reserve(static_cast<std::size_t>(num_devices));
  for (int rank = 0; rank < num_devices; ++rank) {
    devices_.push_back(std::make_unique<Device>(rank, profile_.device, mode,
                                                &trace_, hazard_.get()));
  }
}

void Machine::synchronize() {
  for (auto& device : devices_) device->synchronize();
}

void Machine::begin_epoch(int epoch) {
  if (!fault_plan_) return;
  fault_plan_->begin_epoch(epoch);
  for (int rank = 0; (rank = fault_plan_->take_device_failure()) >= 0;) {
    if (rank >= num_devices()) continue;  // already shrunk past this rank
    if (devices_[static_cast<std::size_t>(rank)]->is_failed()) continue;
    devices_[static_cast<std::size_t>(rank)]->mark_failed();
    trace_.record_fault(FaultRecord{
        .kind = FaultEventKind::kDeviceFailure,
        .epoch = epoch,
        .device = rank,
        .detail = "injected permanent device failure",
    });
  }
  for (const FaultSpec& spec : fault_plan_->take_newly_degraded()) {
    trace_.record_fault(FaultRecord{
        .kind = FaultEventKind::kLinkDegrade,
        .epoch = epoch,
        .device = -1,
        .value = spec.severity,
        .detail = "link bandwidth x" + std::to_string(spec.severity) + " for " +
                  std::to_string(spec.count) + " epoch(s)",
    });
  }
}

double Machine::align_clocks() {
  synchronize();
  const double t = sim_time();
  const Event aligned = Event::signaled(t);
  for (auto& device : devices_) {
    device->compute_stream().wait_event(aligned);
    device->comm_stream().wait_event(aligned);
  }
  synchronize();
  return t;
}

double Machine::sim_time() const {
  double t = 0.0;
  for (const auto& device : devices_) t = std::max(t, device->sim_time());
  return t;
}

std::uint64_t Machine::max_memory_peak() const {
  std::uint64_t peak = 0;
  for (const auto& device : devices_) {
    peak = std::max(peak, device->memory_peak());
  }
  return peak;
}

void Machine::reset_memory_peaks() {
  for (auto& device : devices_) device->reset_memory_peak();
}

}  // namespace mggcn::sim
