// Happens-before hazard auditing for the simulated runtime.
//
// Tasks declare the DeviceBuffers they read and write (TaskDesc::reads /
// TaskDesc::writes); the stream workers maintain vector clocks — one slot
// per stream, joined across event edges, collective rendezvous, and
// host-side synchronization — and feed every completed task into the
// HazardChecker. The checker keeps, per buffer, the last write and the
// reads since that write, and reports any conflicting pair of accesses
// whose clocks are incomparable (neither happens-before the other).
// This is the validation layer CAGNET/LBANN-style pipelines ship
// for their hand-threaded broadcast/SpMM dependencies (§4.2–4.3).
//
// Enable machine-wide with MGGCN_HAZARD_CHECK=1 (any non-empty value other
// than "0"), or explicitly via the Machine constructor. Violations are
// recorded into the machine's Trace so tests and CI can assert zero.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace mggcn::sim {

class Trace;
enum class HazardKind;

/// A vector clock: one monotonically increasing component per stream,
/// plus the implicit host component carried by HazardChecker::host_clock.
/// Missing trailing components are zero.
using HbClock = std::vector<std::uint64_t>;

/// True when every component of `a` is <= the matching component of `b`,
/// i.e. the event stamped `a` happens-before (or equals) the one stamped
/// `b`.
[[nodiscard]] bool clock_leq(const HbClock& a, const HbClock& b);

/// Componentwise max: `into = max(into, other)`.
void clock_join(HbClock& into, const HbClock& other);

/// One declared access to a DeviceBuffer. `buffer` is the buffer's unique
/// identity (DeviceBuffer::id()); 0 means "no buffer" and is ignored by
/// the checker, so declarations stay valid for empty/moved-from buffers.
struct BufferAccess {
  std::uint64_t buffer = 0;
  std::string name;
};

/// True when the MGGCN_HAZARD_CHECK environment variable asks for
/// machine-wide hazard checking (set and not "0").
[[nodiscard]] bool hazard_check_env();

/// Thread-safe happens-before race detector over declared buffer accesses.
/// One instance is shared by all streams of a Machine.
class HazardChecker {
 public:
  explicit HazardChecker(Trace* trace) : trace_(trace) {}

  HazardChecker(const HazardChecker&) = delete;
  HazardChecker& operator=(const HazardChecker&) = delete;

  /// Assigns the next vector-clock slot to a stream (called once per
  /// Stream at construction).
  int register_stream();

  /// Checks one completed task's declared accesses against the per-buffer
  /// history. `clock` is the task's vector clock *after* ticking its own
  /// stream slot, so it uniquely identifies the task.
  void on_task(const std::string& label, const HbClock& clock,
               const std::vector<BufferAccess>& reads,
               const std::vector<BufferAccess>& writes);

  /// The host thread's clock: everything the host has observed complete
  /// (via stream synchronization). Snapshot into each task at enqueue so
  /// host program order counts as a happens-before edge.
  [[nodiscard]] HbClock host_clock() const;
  void join_host_clock(const HbClock& clock);

  /// Number of violations reported so far (also mirrored into the Trace).
  [[nodiscard]] std::size_t violation_count() const;

 private:
  struct Access {
    HbClock clock;
    std::string label;
  };
  struct BufferState {
    std::string name;
    bool written = false;
    Access last_write;
    std::vector<Access> readers;  ///< reads since `last_write`
  };

  void report(HazardKind kind, const std::string& buffer,
              const std::string& earlier, const std::string& later);

  Trace* trace_;
  mutable std::mutex mutex_;
  HbClock host_clock_;
  int next_slot_ = 0;
  std::map<std::uint64_t, BufferState> buffers_;
  std::size_t violations_ = 0;
};

}  // namespace mggcn::sim
