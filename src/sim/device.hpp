// Simulated GPU devices, streams, and events.
//
// Programming model = CUDA's: a Device owns in-order Streams; work is
// enqueued asynchronously; Events provide cross-stream and host
// synchronization. Execution is real (each stream is a host worker thread
// that runs the task bodies, so data hazards and ordering bugs are real
// bugs), while *time* is simulated: every task carries a KernelCost and the
// stream advances a simulated clock by the cost model's duration. Event
// timestamps propagate simulated time through the dependency DAG, so the
// resulting timeline is deterministic regardless of host thread scheduling.
//
// MG-GCN uses exactly two streams per device (§4.3): stream 0 for compute,
// stream 1 for communication.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/hazard.hpp"
#include "sim/profile.hpp"
#include "sim/trace.hpp"
#include "util/blocking_queue.hpp"
#include "util/error.hpp"

namespace mggcn::sim {

class Device;

/// Whether task bodies actually execute.
enum class ExecutionMode {
  kReal,     ///< run kernel bodies (numerics are real)
  kPhantom,  ///< skip bodies; scheduling/cost/memory accounting only
};

/// A completion marker with a simulated timestamp. Copyable handle to
/// shared state; signaled exactly once by the owning stream.
class Event {
 public:
  struct State {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    double sim_time = 0.0;
    /// Completing task's vector clock (empty unless hazard checking is on);
    /// waiting tasks join it so event edges count as happens-before edges.
    HbClock hb_clock;
  };

  Event() = default;
  explicit Event(std::shared_ptr<State> state) : state_(std::move(state)) {}

  /// An already-complete event carrying the given simulated timestamp
  /// (used to align stream clocks at epoch boundaries).
  static Event signaled(double sim_time);

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  /// Host-blocks until signaled; returns the simulated completion time.
  double wait() const;

  [[nodiscard]] bool is_complete() const;

  [[nodiscard]] const std::shared_ptr<State>& state() const { return state_; }

 private:
  std::shared_ptr<State> state_;
};

/// Rendezvous shared by the per-rank tasks of one collective operation.
/// All participating streams synchronize their simulated start times (a
/// collective begins when the last rank arrives), one designated rank
/// performs the data movement, and all ranks complete at start + duration.
struct CollectiveGroup {
  explicit CollectiveGroup(int nranks) : nranks(nranks) {}

  int nranks;
  /// Simulated duration of the collective (set by the communicator).
  double duration = 0.0;
  /// Executed once (by the executor rank) after all ranks arrive;
  /// may be empty in phantom mode.
  std::function<void()> action;

  std::mutex mutex;
  std::condition_variable cv;
  int arrived = 0;
  double start_max = 0.0;
  bool action_done = false;
  /// Join of every participant's clock; a collective orders all ranks'
  /// prior work before all ranks' subsequent work (hazard checking only).
  HbClock hb_join;
};

/// One task enqueued on a stream.
struct TaskDesc {
  std::string label;
  TaskKind kind = TaskKind::kOther;
  int stage = -1;
  KernelCost cost;
  /// HBM bandwidth share available to this task (overlap contention).
  double bandwidth_scale = 1.0;
  /// The kernel body (skipped in phantom mode); may be empty.
  std::function<void()> body;
  /// Events this task waits on before starting.
  std::vector<Event> waits;
  /// Declared buffer accesses, audited by the machine's HazardChecker
  /// (see DeviceBuffer::access()). Empty lists opt the task out.
  std::vector<BufferAccess> reads;
  std::vector<BufferAccess> writes;
  /// Record in the trace (markers/syncs are not traced).
  bool traced = true;

  /// Collective participation: when set, cost/body are ignored and the
  /// group protocol above runs instead. `collective_executor` marks the
  /// single rank that runs group->action.
  std::shared_ptr<CollectiveGroup> collective;
  bool collective_executor = false;
};

/// In-order asynchronous work queue backed by one host worker thread.
class Stream {
 public:
  Stream(Device& device, int id);
  ~Stream();

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  /// Enqueues a task; returns its completion event.
  Event enqueue(TaskDesc desc);

  /// Records a marker event at the current tail of the stream.
  Event record_event();

  /// Makes all *subsequent* tasks on this stream wait for `event`
  /// (cudaStreamWaitEvent semantics).
  void wait_event(const Event& event);

  /// Host-blocks until every task enqueued so far has retired.
  void synchronize();

  /// Simulated time at which the last retired task finished.
  [[nodiscard]] double sim_time() const;

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] Device& device() const { return device_; }

 private:
  struct PendingTask {
    TaskDesc desc;
    std::shared_ptr<Event::State> signal;
    /// Host clock at enqueue time: host program order (enqueue after a
    /// synchronize) is a happens-before edge (hazard checking only).
    HbClock enqueue_clock;
  };

  void worker_loop();
  void run_task(PendingTask& task);

  Device& device_;
  int id_;
  util::BlockingQueue<PendingTask> queue_;
  mutable std::mutex time_mutex_;
  double sim_time_ = 0.0;
  /// Hazard-checking state, touched only by the worker thread after
  /// construction: this stream's clock slot and running vector clock.
  int hb_slot_ = -1;
  HbClock clock_;
  /// MGGCN_SCHED_FUZZ: deterministic per-stream delay injection.
  bool fuzz_ = false;
  std::uint64_t fuzz_state_ = 0;
  std::thread worker_;
};

/// A simulated GPU: memory accounting + two streams + its half of the
/// machine profile.
class Device {
 public:
  static constexpr int kComputeStream = 0;
  static constexpr int kCommStream = 1;

  Device(int rank, DeviceProfile profile, ExecutionMode mode, Trace* trace,
         HazardChecker* hazard = nullptr);
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] const DeviceProfile& profile() const { return profile_; }
  [[nodiscard]] ExecutionMode mode() const { return mode_; }
  [[nodiscard]] Trace* trace() const { return trace_; }
  [[nodiscard]] HazardChecker* hazard() const { return hazard_; }

  [[nodiscard]] Stream& compute_stream() { return *streams_[kComputeStream]; }
  [[nodiscard]] Stream& comm_stream() { return *streams_[kCommStream]; }

  /// Fault injection: marks the device permanently lost. Work already
  /// enqueued keeps draining (so pending collectives complete and
  /// synchronize() stays safe), but submitting new *traced* work throws
  /// DeviceLostError — untraced markers/syncs still pass, modeling a dead
  /// accelerator whose host-side control path still answers.
  void mark_failed();
  [[nodiscard]] bool is_failed() const {
    return failed_.load(std::memory_order_acquire);
  }

  /// Memory accounting. reserve() throws OutOfMemoryError when the
  /// allocation would exceed the profile's capacity.
  void reserve_memory(std::uint64_t bytes, const std::string& what);
  void release_memory(std::uint64_t bytes) noexcept;
  [[nodiscard]] std::uint64_t memory_used() const;
  [[nodiscard]] std::uint64_t memory_peak() const;
  void reset_memory_peak();

  /// Drains both streams.
  void synchronize();

  /// Max simulated time across streams; exact once synchronized.
  [[nodiscard]] double sim_time() const;

 private:
  int rank_;
  DeviceProfile profile_;
  ExecutionMode mode_;
  Trace* trace_;
  HazardChecker* hazard_;
  std::atomic<bool> failed_{false};

  mutable std::mutex memory_mutex_;
  std::uint64_t memory_used_ = 0;
  std::uint64_t memory_peak_ = 0;

  std::vector<std::unique_ptr<Stream>> streams_;
};

/// Draws the next identity from the process-wide DeviceBuffer id space
/// (mem::WorkspacePool stamps its blocks from the same source so pooled and
/// owned buffers share one hazard-audit namespace).
[[nodiscard]] std::uint64_t next_buffer_identity();

/// RAII simulated-device memory. In real mode it owns host storage for the
/// floats; in phantom mode only the accounting happens. Element type is
/// float throughout (the paper trains fp32).
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(Device& device, std::size_t elements, std::string name = {});
  ~DeviceBuffer();

  /// A non-owning view over externally managed storage (a workspace-pool
  /// slab): no device-ledger reservation happens, `data` must outlive the
  /// view, and `id` carries the underlying block's stable hazard identity
  /// across reuse. `data` may be null in phantom mode.
  static DeviceBuffer view(Device& device, std::size_t elements, float* data,
                           std::string name, std::uint64_t id);

  DeviceBuffer(DeviceBuffer&& other) noexcept;
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept;
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  [[nodiscard]] std::size_t size() const { return elements_; }
  [[nodiscard]] std::uint64_t bytes() const {
    return static_cast<std::uint64_t>(elements_) * sizeof(float);
  }
  [[nodiscard]] bool empty() const { return elements_ == 0; }
  [[nodiscard]] Device* device() const { return device_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Stable identity for hazard auditing: unique per allocation, carried
  /// across moves, 0 for a default-constructed/released buffer.
  [[nodiscard]] std::uint64_t id() const { return id_; }

  /// This buffer's declared-access record for TaskDesc::reads/writes.
  [[nodiscard]] BufferAccess access() const;

  /// Host storage view; empty span in phantom mode.
  [[nodiscard]] std::span<float> span();
  [[nodiscard]] std::span<const float> span() const;
  [[nodiscard]] float* data() { return data_; }
  [[nodiscard]] const float* data() const { return data_; }

  /// Whether this buffer owns its reservation (false for view()s).
  [[nodiscard]] bool owned() const { return owned_; }

  void release();

 private:
  Device* device_ = nullptr;
  std::size_t elements_ = 0;
  std::unique_ptr<float[]> storage_;  ///< owned allocations only
  float* data_ = nullptr;             ///< storage_.get() or the viewed slab
  bool owned_ = true;                 ///< views skip the device ledger
  std::string name_;
  std::uint64_t id_ = 0;
};

}  // namespace mggcn::sim
