#include "sim/profile.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mggcn::sim {

namespace {

constexpr std::uint64_t kGiB = 1ULL << 30;
constexpr std::uint64_t kMiB = 1ULL << 20;

}  // namespace

MachineProfile dgx_v100() {
  MachineProfile m;
  m.name = "dgx-v100";
  m.device = DeviceProfile{
      .name = "V100-SXM2-32GB",
      .memory_bytes = 32 * kGiB,
      .memory_bandwidth = 900e9,
      .l2_bytes = 6 * kMiB,
      .peak_flops = 14e12,
      .kernel_launch_overhead = 8e-6,
  };
  m.interconnect = InterconnectProfile{
      .kind = InterconnectKind::kCubeMesh,
      .links_per_device = 6,
      .link_bandwidth = 25e9,
      .efficiency = 0.90,
  };
  m.max_devices = 8;
  return m;
}

MachineProfile dgx_a100() {
  MachineProfile m;
  m.name = "dgx-a100";
  m.device = DeviceProfile{
      .name = "A100-SXM4-80GB",
      .memory_bytes = 80 * kGiB,
      .memory_bandwidth = 2000e9,
      .l2_bytes = 40 * kMiB,
      .peak_flops = 19.5e12,
      .kernel_launch_overhead = 6e-6,
  };
  m.interconnect = InterconnectProfile{
      .kind = InterconnectKind::kSwitch,
      .links_per_device = 12,
      .link_bandwidth = 25e9,
      .efficiency = 0.90,
  };
  m.max_devices = 8;
  return m;
}

MachineProfile xeon_9242_cluster() {
  MachineProfile m;
  m.name = "xeon-9242";
  // One socket: 48 cores @2.3GHz, AVX-512 (2 FMA units): ~3.5 TFLOP/s fp32;
  // 6-channel DDR4-2933: ~140 GB/s; 38.5 MiB LLC. "memory_bytes" is the
  // 384GB node RAM halved per socket.
  m.device = DeviceProfile{
      .name = "Xeon-Platinum-9242",
      .memory_bytes = 192 * kGiB,
      .memory_bandwidth = 140e9,
      .l2_bytes = 38 * kMiB,
      .peak_flops = 3.5e12,
      .kernel_launch_overhead = 1e-6,
  };
  // Mellanox HDR: 200 Gb/s = 25 GB/s per port; DragonFly topology modeled
  // as a single-port fabric per socket.
  m.interconnect = InterconnectProfile{
      .kind = InterconnectKind::kHostFabric,
      .links_per_device = 1,
      .link_bandwidth = 25e9,
      .efficiency = 0.80,
  };
  m.max_devices = 128;
  return m;
}

MachineProfile dgx_a100_cluster(int nodes) {
  MGGCN_CHECK(nodes >= 1);
  MachineProfile m = dgx_a100();
  m.name = "dgx-a100-cluster";
  m.interconnect.devices_per_node = 8;
  m.interconnect.internode_bandwidth = 25e9;  // HDR 200 Gb/s per node
  m.max_devices = 8 * nodes;
  return m;
}

MachineProfile scale_profile(MachineProfile profile, double scale,
                             std::uint64_t invariant_bytes) {
  MGGCN_CHECK(scale >= 1.0);
  const double variable = std::max(
      0.0, static_cast<double>(profile.device.memory_bytes) -
               static_cast<double>(invariant_bytes));
  profile.device.memory_bytes =
      invariant_bytes + static_cast<std::uint64_t>(variable / scale);
  profile.device.l2_bytes = static_cast<std::uint64_t>(
      static_cast<double>(profile.device.l2_bytes) / scale);
  profile.device.kernel_launch_overhead /= scale;
  profile.interconnect.base_latency /= scale;
  return profile;
}

MachineProfile machine_by_name(const std::string& name) {
  if (name == "dgx-v100" || name == "dgx-1" || name == "v100")
    return dgx_v100();
  if (name == "dgx-a100" || name == "a100") return dgx_a100();
  if (name == "xeon-9242" || name == "cpu") return xeon_9242_cluster();
  throw InvalidArgumentError("unknown machine profile: " + name);
}

}  // namespace mggcn::sim
