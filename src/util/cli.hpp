// Tiny command-line option parser for benches and examples.
//
// Supports "--name value", "--name=value", and boolean "--flag". Unknown
// options throw so typos in experiment scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mggcn::util {

class CliParser {
 public:
  CliParser(std::string program_description)
      : description_(std::move(program_description)) {}

  /// Registers an option with a default value; returns *this for chaining.
  CliParser& option(const std::string& name, const std::string& default_value,
                    const std::string& help);
  CliParser& flag(const std::string& name, const std::string& help);

  /// Parses argv; throws InvalidArgumentError on unknown options or missing
  /// values. Recognizes --help and sets help_requested().
  void parse(int argc, const char* const* argv);

  [[nodiscard]] bool help_requested() const { return help_requested_; }
  [[nodiscard]] std::string help() const;

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Comma-separated integer list, e.g. "--gpus 1,2,4,8".
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      const std::string& name) const;
  /// Comma-separated string list.
  [[nodiscard]] std::vector<std::string> get_list(
      const std::string& name) const;

 private:
  struct Spec {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };

  std::string description_;
  std::vector<std::pair<std::string, Spec>> specs_;  // declaration order
  std::map<std::string, std::string> values_;
  bool help_requested_ = false;
};

}  // namespace mggcn::util
