// Minimal leveled logger.
//
// The simulated runtime is multi-threaded (one worker per device stream), so
// log emission is serialized through a single mutex; messages are composed
// off-lock in a stringstream owned by the statement.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace mggcn::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {

void emit(LogLevel level, const std::string& message);

class LogStatement {
 public:
  explicit LogStatement(LogLevel level) : level_(level) {}
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;
  ~LogStatement() { emit(level_, stream_.str()); }

  template <typename T>
  LogStatement& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

struct NullStatement {
  template <typename T>
  NullStatement& operator<<(const T&) {
    return *this;
  }
};

}  // namespace detail

}  // namespace mggcn::util

#define MGGCN_LOG(level)                                         \
  if (::mggcn::util::LogLevel::level < ::mggcn::util::log_level()) \
    ;                                                            \
  else                                                           \
    ::mggcn::util::detail::LogStatement(::mggcn::util::LogLevel::level)
