// Shared environment-knob parsing for the MGGCN_* registries.
//
// Every mode registry (MGGCN_KERNELS, MGGCN_PLAN, MGGCN_PART, MGGCN_COMM,
// MGGCN_CACHE, MGGCN_SERVE_CACHE, ...) follows the same contract: the
// variable is read once at first use, an unset/empty value means "use the
// default", and anything unparsable fails loudly with a message naming the
// knob — experiment-script typos must never silently change the
// configuration under study. These helpers centralize that contract so a
// new knob cannot get it subtly wrong.
#pragma once

#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace mggcn::util {

/// Reads an enum-valued knob. `parse` maps a token to std::optional<Enum>
/// (the registry's existing parse_* function); `allowed` is the human
/// description of the legal tokens, e.g. "'off', 'embed', or 'auto'".
/// Throws InvalidArgumentError naming the knob on an unknown token.
template <typename Enum, typename Parser>
Enum env_enum(const char* name, Enum fallback, Parser&& parse,
              std::string_view allowed) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  const auto parsed = parse(std::string_view(env));
  MGGCN_CHECK_MSG(parsed.has_value(), std::string(name) + " must be " +
                                          std::string(allowed) + ", got '" +
                                          env + "'");
  return *parsed;
}

/// Reads an integer knob in [lo, hi]. The whole token must parse (trailing
/// garbage fails loudly, naming the knob).
inline long long env_int(const char* name, long long fallback, long long lo,
                         long long hi) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* tail = nullptr;
  const long long value = std::strtoll(env, &tail, 10);
  MGGCN_CHECK_MSG(tail != env && *tail == '\0' && value >= lo && value <= hi,
                  std::string(name) + " must be an integer in [" +
                      std::to_string(lo) + ", " + std::to_string(hi) +
                      "], got '" + env + "'");
  return value;
}

/// Reads a floating-point knob in [lo, hi], full-consumption like env_int.
/// `what` describes the expected value for the error message, e.g.
/// "a fraction in [0, 1]".
inline double env_double(const char* name, double fallback, double lo,
                         double hi, std::string_view what) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* tail = nullptr;
  const double value = std::strtod(env, &tail);
  MGGCN_CHECK_MSG(tail != env && *tail == '\0' && value >= lo && value <= hi,
                  std::string(name) + " must be " + std::string(what) +
                      ", got '" + env + "'");
  return value;
}

}  // namespace mggcn::util
