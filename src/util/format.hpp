// Human-readable formatting helpers used by benches and logs.
#pragma once

#include <cstdint>
#include <iomanip>
#include <sstream>
#include <string>

namespace mggcn::util {

/// "1.50 GiB", "512.00 MiB", ...
inline std::string format_bytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(unit == 0 ? 0 : 2) << value << ' '
     << kUnits[unit];
  return os.str();
}

/// "12.3 us", "4.56 ms", "1.23 s" from seconds.
inline std::string format_seconds(double seconds) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(seconds < 0 ? 3 : 3);
  if (seconds < 1e-6) {
    os << seconds * 1e9 << " ns";
  } else if (seconds < 1e-3) {
    os << seconds * 1e6 << " us";
  } else if (seconds < 1.0) {
    os << seconds * 1e3 << " ms";
  } else {
    os << seconds << " s";
  }
  return os.str();
}

/// Fixed-precision double.
inline std::string format_double(double value, int precision = 3) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

/// "1.23x" speedup.
inline std::string format_speedup(double value) {
  return format_double(value, 2) + "x";
}

}  // namespace mggcn::util
