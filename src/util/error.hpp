// Error handling primitives shared by every mggcn module.
//
// We prefer exceptions carrying formatted context over abort() so that the
// simulated-device runtime can surface out-of-memory and misuse conditions
// to the benchmark harnesses (which render them as "Out of Memory" table
// cells, exactly like the paper's figures do).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mggcn {

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a simulated device allocation exceeds its memory capacity.
/// Benchmarks catch this to emit the paper's "Out of Memory" cells.
class OutOfMemoryError : public Error {
 public:
  explicit OutOfMemoryError(const std::string& what) : Error(what) {}
};

/// Thrown on precondition violations (bad shapes, invalid ranks, ...).
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

/// Thrown by the communicator when a collective keeps failing after the
/// configured retry budget (fault injection, see sim/fault.hpp). Transient
/// faults below the budget are absorbed by retry-with-backoff and never
/// surface; this is the "link is really down" escalation.
class CommError : public Error {
 public:
  CommError(const std::string& what, int attempts)
      : Error(what), attempts_(attempts) {}

  /// Failed attempts spent before giving up (retries + the first try).
  [[nodiscard]] int attempts() const { return attempts_; }

 private:
  int attempts_ = 0;
};

/// Thrown when work is submitted to (or a collective spans) a device that a
/// FaultPlan has marked permanently failed. The elastic trainer catches
/// this to trigger checkpoint recovery onto the surviving devices.
class DeviceLostError : public Error {
 public:
  DeviceLostError(const std::string& what, int rank)
      : Error(what), rank_(rank) {}

  [[nodiscard]] int rank() const { return rank_; }

 private:
  int rank_ = -1;
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvalidArgumentError(os.str());
}

}  // namespace detail

}  // namespace mggcn

/// Precondition check that throws InvalidArgumentError with location info.
/// Usage: MGGCN_CHECK(a.cols() == b.rows()) << optional stream message is not
/// supported; pass a message string instead: MGGCN_CHECK_MSG(cond, "...").
#define MGGCN_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::mggcn::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define MGGCN_CHECK_MSG(expr, msg)                                          \
  do {                                                                      \
    if (!(expr))                                                            \
      ::mggcn::detail::throw_check_failure(#expr, __FILE__, __LINE__, msg); \
  } while (0)
