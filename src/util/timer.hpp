// Wall-clock timer for host-side measurements (test/bench plumbing; the
// simulated GPU time lives in sim::Device, not here).
#pragma once

#include <chrono>

namespace mggcn::util {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mggcn::util
