// Deterministic, seedable random number generation.
//
// Everything in the reproduction that involves randomness (graph generation,
// feature synthesis, vertex permutation, weight initialization) flows through
// these generators so that a given seed reproduces a run bit-for-bit across
// machines — a prerequisite for the regression tests and for comparing the
// benchmark output against EXPERIMENTS.md.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace mggcn::util {

/// SplitMix64: used to expand a single user seed into stream seeds.
inline constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Xoshiro256++ PRNG. Satisfies UniformRandomBitGenerator so it can be used
/// with <random> distributions, but we provide the distributions we need
/// directly to guarantee cross-platform determinism (libstdc++ and libc++
/// implement std::normal_distribution differently).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x243f6a8885a308d3ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
    have_gauss_ = false;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection to
  /// avoid modulo bias.
  std::uint64_t uniform_index(std::uint64_t n) {
    MGGCN_CHECK(n > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method (deterministic given seed).
  double gaussian() {
    if (have_gauss_) {
      have_gauss_ = false;
      return cached_gauss_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    cached_gauss_ = v * f;
    have_gauss_ = true;
    return u * f;
  }

  double gaussian(double mean, double stddev) {
    return mean + stddev * gaussian();
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform_index(i)]);
    }
  }

  /// Random permutation of [0, n).
  template <typename Index = std::uint32_t>
  std::vector<Index> permutation(std::size_t n) {
    std::vector<Index> p(n);
    for (std::size_t i = 0; i < n; ++i) p[i] = static_cast<Index>(i);
    shuffle(p);
    return p;
  }

  /// Derive an independent child generator (for per-device / per-module
  /// streams that must not interleave draws).
  Rng fork() { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double cached_gauss_ = 0.0;
  bool have_gauss_ = false;
};

}  // namespace mggcn::util
