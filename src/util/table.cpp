#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace mggcn::util {

void Table::add_row(std::vector<std::string> row) {
  MGGCN_CHECK_MSG(row.size() == header_.size(),
                  "table row arity must match header");
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
    }
    os << "-|\n";
  };

  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace mggcn::util
