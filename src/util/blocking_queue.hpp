// Unbounded MPMC blocking queue used by the simulated-device stream workers.
//
// close() wakes all waiters; pop() then drains remaining items before
// reporting closure, so a stream worker always executes every task enqueued
// before shutdown (matching cudaStreamSynchronize-then-destroy semantics).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace mggcn::util {

template <typename T>
class BlockingQueue {
 public:
  /// Enqueues an item; returns false if the queue is already closed.
  bool push(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed *and* drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace mggcn::util
