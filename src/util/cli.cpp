#include "util/cli.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace mggcn::util {

namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

}  // namespace

CliParser& CliParser::option(const std::string& name,
                             const std::string& default_value,
                             const std::string& help) {
  specs_.emplace_back(name, Spec{default_value, help, /*is_flag=*/false});
  values_[name] = default_value;
  return *this;
}

CliParser& CliParser::flag(const std::string& name, const std::string& help) {
  specs_.emplace_back(name, Spec{"false", help, /*is_flag=*/true});
  values_[name] = "false";
  return *this;
}

void CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    MGGCN_CHECK_MSG(starts_with(arg, "--"), "expected --option, got: " + arg);
    arg = arg.substr(2);

    std::string name = arg;
    std::optional<std::string> inline_value;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
    }

    auto it = std::find_if(specs_.begin(), specs_.end(),
                           [&](const auto& s) { return s.first == name; });
    MGGCN_CHECK_MSG(it != specs_.end(), "unknown option: --" + name);

    if (it->second.is_flag && !inline_value) {
      values_[name] = "true";
    } else if (inline_value) {
      values_[name] = *inline_value;
    } else {
      MGGCN_CHECK_MSG(i + 1 < argc, "missing value for --" + name);
      values_[name] = argv[++i];
    }
  }
}

std::string CliParser::help() const {
  std::ostringstream os;
  os << description_ << "\n\noptions:\n";
  for (const auto& [name, spec] : specs_) {
    os << "  --" << name;
    if (!spec.is_flag) os << " <value>";
    os << "\n      " << spec.help;
    if (!spec.is_flag) os << " (default: " << spec.default_value << ')';
    os << '\n';
  }
  return os.str();
}

std::string CliParser::get(const std::string& name) const {
  auto it = values_.find(name);
  MGGCN_CHECK_MSG(it != values_.end(), "option not declared: --" + name);
  return it->second;
}

namespace {

// Strict numeric parsing: the whole token must be consumed, and any
// std::stoll/std::stod failure is rewrapped to name the offending flag
// (mirrors sim/fault.cpp's parse_int for fault specs).
std::int64_t parse_full_int(const std::string& s, const std::string& name) {
  try {
    std::size_t used = 0;
    const std::int64_t value = std::stoll(s, &used);
    MGGCN_CHECK_MSG(used == s.size(),
                    "invalid integer for --" + name + ": '" + s + "'");
    return value;
  } catch (const std::logic_error&) {
    throw InvalidArgumentError("invalid integer for --" + name + ": '" + s +
                               "'");
  }
}

double parse_full_double(const std::string& s, const std::string& name) {
  try {
    std::size_t used = 0;
    const double value = std::stod(s, &used);
    MGGCN_CHECK_MSG(used == s.size(),
                    "invalid number for --" + name + ": '" + s + "'");
    return value;
  } catch (const std::logic_error&) {
    throw InvalidArgumentError("invalid number for --" + name + ": '" + s +
                               "'");
  }
}

}  // namespace

std::int64_t CliParser::get_int(const std::string& name) const {
  return parse_full_int(get(name), name);
}

double CliParser::get_double(const std::string& name) const {
  return parse_full_double(get(name), name);
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string v = get(name);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw InvalidArgumentError("invalid boolean for --" + name + ": '" + v +
                             "' (expected true/1/yes/on or false/0/no/off)");
}

std::vector<std::string> CliParser::get_list(const std::string& name) const {
  std::vector<std::string> out;
  std::stringstream ss(get(name));
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::vector<std::int64_t> CliParser::get_int_list(
    const std::string& name) const {
  std::vector<std::int64_t> out;
  for (const auto& item : get_list(name)) {
    out.push_back(parse_full_int(item, name));
  }
  return out;
}

}  // namespace mggcn::util
