// ASCII table / CSV rendering for the benchmark harnesses.
//
// Every bench prints the same rows/series the corresponding paper table or
// figure reports; this helper keeps those printouts aligned and uniform.
#pragma once

#include <string>
#include <vector>

namespace mggcn::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Appends a row; it must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with column-aligned padding and a header rule.
  [[nodiscard]] std::string to_string() const;

  /// Renders as CSV (no quoting; cells must not contain commas).
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mggcn::util
