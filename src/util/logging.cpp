#include "util/logging.hpp"

#include <atomic>

namespace mggcn::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {

void emit(LogLevel level, const std::string& message) {
  std::lock_guard lock(g_emit_mutex);
  std::ostream& os = level >= LogLevel::kWarn ? std::cerr : std::clog;
  os << '[' << level_name(level) << "] " << message << '\n';
}

}  // namespace detail

}  // namespace mggcn::util
