#!/usr/bin/env bash
# Formats (or with --check, verifies) every tracked C++ source with
# clang-format using the repo's .clang-format. Usage:
#   scripts/format.sh           # rewrite files in place
#   scripts/format.sh --check   # exit non-zero if any file needs formatting
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "error: $CLANG_FORMAT not found (set CLANG_FORMAT to override)" >&2
  exit 2
fi

mapfile -t files < <(git ls-files '*.cpp' '*.hpp')

if [[ "${1:-}" == "--check" ]]; then
  "$CLANG_FORMAT" --dry-run --Werror "${files[@]}"
  echo "format check passed (${#files[@]} files)"
else
  "$CLANG_FORMAT" -i "${files[@]}"
  echo "formatted ${#files[@]} files"
fi
