#!/usr/bin/env python3
"""CI perf-regression gate over bench_kernels JSON output.

Reads a google-benchmark JSON file (produced with
``bench_kernels --benchmark_format=json --benchmark_out=kernels.json``)
and enforces three properties:

1. **No throughput regression**: every benchmark that reports a
   ``flops_per_s`` counter and appears in the committed baseline
   (``scripts/perf_baseline.json``) must reach at least
   ``(1 - max_regression)`` of its baseline throughput. The baseline is
   machine-specific, so this check is strict on the machine that recorded
   it and advisory elsewhere (pass ``--max-regression 1`` to disable).
   Baseline entries missing from the current run (e.g. a filtered bench
   invocation, or renamed benchmarks) produce a warning, not a failure.

2. **Tiled beats naive**: for every benchmark name containing a
   ``/naive/`` policy segment with a ``/tiled/`` twin, the tiled
   throughput must be at least ``--min-speedup`` times the naive one.

3. **Planned beats tiled on large graphs**: every large
   (``n:<large-n>``) Spmm/SpmmSkew benchmark under the ``planned``
   policy must reach at least ``--min-planned-speedup`` times its
   ``tiled`` twin, and at least one skewed-degree (SpmmSkew) large case
   must reach ``--min-skew-speedup`` — the inspector-executor payoff on
   the heavy-tailed degree distributions it targets.

Checks 2 and 3 are machine-independent: both sides of each ratio come
from the same run on the same host. They are still noise-sensitive, so
CI runs the bench with ``--benchmark_enable_random_interleaving=true``
and ``--benchmark_repetitions=5``; this script prefers the ``median``
aggregate over per-iteration rows when repetitions are present.

Refresh the baseline after an intentional perf change with::

    ./build/bench/bench_kernels --benchmark_format=json \
        --benchmark_out=kernels.json
    python3 scripts/check_perf.py kernels.json --update

Exit status is 0 when all checks pass, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent / "perf_baseline.json"
COUNTER = "flops_per_s"


def load_throughputs(path: Path) -> dict[str, float]:
    """Maps benchmark name -> flops_per_s for every benchmark reporting it.

    Aggregate rows (mean/median/stddev from --benchmark_repetitions) are
    skipped except the median, which replaces the per-iteration rows.
    """
    with open(path) as f:
        doc = json.load(f)
    plain: dict[str, float] = {}
    medians: dict[str, float] = {}
    for bench in doc.get("benchmarks", []):
        if COUNTER not in bench:
            continue
        value = float(bench[COUNTER])
        run_type = bench.get("run_type", "iteration")
        if run_type == "aggregate":
            if bench.get("aggregate_name") == "median":
                medians[bench.get("run_name", bench["name"])] = value
            continue
        plain[bench["name"]] = value
    plain.update(medians)
    return plain


def check_regressions(current: dict[str, float], baseline: dict[str, float],
                      max_regression: float) -> list[str]:
    failures = []
    compared = 0
    for name, base in sorted(baseline.items()):
        if name not in current:
            # A filtered run or a renamed benchmark, not a perf problem:
            # warn so the gap is visible, but do not fail the gate.
            print(f"warning: baseline benchmark not in current run: {name}",
                  file=sys.stderr)
            continue
        compared += 1
        floor = base * (1.0 - max_regression)
        if current[name] < floor:
            failures.append(
                f"regression: {name}: {current[name]:.3e} {COUNTER} < "
                f"{floor:.3e} (baseline {base:.3e}, allowed -"
                f"{max_regression:.0%})")
    if baseline and compared == 0:
        print("warning: no overlap between baseline and current benchmark "
              "names; regression check skipped", file=sys.stderr)
    return failures


def check_speedups(current: dict[str, float],
                   min_speedup: float) -> tuple[list[str], list[str]]:
    failures, report = [], []
    for name, naive in sorted(current.items()):
        if "/naive/" not in name:
            continue
        twin = name.replace("/naive/", "/tiled/")
        if twin not in current:
            continue
        speedup = current[twin] / naive if naive > 0 else float("inf")
        report.append(f"{twin}: {speedup:.2f}x over naive")
        if speedup < min_speedup:
            failures.append(
                f"speedup below floor: {twin} is {speedup:.2f}x over naive "
                f"(required {min_speedup:.2f}x)")
    return failures, report


def check_planned(current: dict[str, float], min_planned: float,
                  min_skew: float, large_n: int) -> tuple[list[str],
                                                          list[str]]:
    """The inspector-executor gate: planned vs tiled on large SpMM cases."""
    failures, report = [], []
    marker = f"/n:{large_n}/"
    best_skew: tuple[float, str] | None = None
    for name, tiled in sorted(current.items()):
        family = name.split("/", 1)[0]
        if family not in ("Spmm", "SpmmSkew"):
            continue
        if "/tiled/" not in name or marker not in name:
            continue
        twin = name.replace("/tiled/", "/planned/")
        if twin not in current:
            print(f"warning: no planned twin for {name}; skipping",
                  file=sys.stderr)
            continue
        speedup = current[twin] / tiled if tiled > 0 else float("inf")
        report.append(f"{twin}: {speedup:.2f}x over tiled")
        if speedup < min_planned:
            failures.append(
                f"planned below floor: {twin} is {speedup:.2f}x over tiled "
                f"(required {min_planned:.2f}x)")
        if family == "SpmmSkew":
            if best_skew is None or speedup > best_skew[0]:
                best_skew = (speedup, twin)
    if best_skew is None:
        if report:
            print("warning: no large SpmmSkew planned/tiled pair; skew gate "
                  "skipped", file=sys.stderr)
    elif best_skew[0] < min_skew:
        failures.append(
            f"skew gate: best skewed-degree planned speedup is "
            f"{best_skew[0]:.2f}x ({best_skew[1]}); at least one case must "
            f"reach {min_skew:.2f}x over tiled")
    return failures, report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path,
                        help="bench_kernels JSON from this run")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="committed baseline JSON (default: %(default)s)")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional throughput drop vs the "
                        "baseline (default: %(default)s)")
    parser.add_argument("--min-speedup", type=float, default=1.2,
                        help="required tiled-over-naive throughput ratio "
                        "(default: %(default)s)")
    parser.add_argument("--min-planned-speedup", type=float, default=1.0,
                        help="required planned-over-tiled ratio on every "
                        "large Spmm/SpmmSkew case (default: %(default)s)")
    parser.add_argument("--min-skew-speedup", type=float, default=1.2,
                        help="planned-over-tiled ratio at least one large "
                        "SpmmSkew case must reach (default: %(default)s)")
    parser.add_argument("--large-n", type=int, default=16384,
                        help="row count that marks a case as large for the "
                        "planned gates (default: %(default)s)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current run "
                        "instead of checking against it")
    args = parser.parse_args()

    current = load_throughputs(args.current)
    if not current:
        print(f"error: no '{COUNTER}' counters in {args.current}",
              file=sys.stderr)
        return 1

    if args.update:
        payload = {
            "_comment": "Recorded bench_kernels throughput; refresh with "
                        "scripts/check_perf.py <json> --update after an "
                        "intentional perf change.",
            "counter": COUNTER,
            "benchmarks": {k: current[k] for k in sorted(current)},
        }
        args.baseline.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"baseline updated: {args.baseline} "
              f"({len(current)} benchmarks)")
        return 0

    failures: list[str] = []
    if args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())["benchmarks"]
        failures += check_regressions(current, baseline, args.max_regression)
    else:
        print(f"warning: baseline {args.baseline} not found; skipping the "
              f"regression check", file=sys.stderr)

    speedup_failures, report = check_speedups(current, args.min_speedup)
    failures += speedup_failures
    planned_failures, planned_report = check_planned(
        current, args.min_planned_speedup, args.min_skew_speedup,
        args.large_n)
    failures += planned_failures
    for line in report + planned_report:
        print(line)

    if failures:
        print(f"\ncheck_perf: {len(failures)} failure(s)", file=sys.stderr)
        for f in failures:
            print(f"  FAIL: {f}", file=sys.stderr)
        return 1
    print(f"check_perf: OK ({len(current)} benchmarks checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
