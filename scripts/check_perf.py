#!/usr/bin/env python3
"""CI perf-regression gate over bench_kernels JSON output.

Reads a google-benchmark JSON file (produced with
``bench_kernels --benchmark_format=json --benchmark_out=kernels.json``)
and enforces three properties:

1. **No throughput regression**: every benchmark that reports a
   ``flops_per_s`` counter and appears in the committed baseline
   (``scripts/perf_baseline.json``) must reach at least
   ``(1 - max_regression)`` of its baseline throughput. The baseline is
   machine-specific, so this check is strict on the machine that recorded
   it and advisory elsewhere (pass ``--max-regression 1`` to disable).
   Baseline entries missing from the current run (e.g. a filtered bench
   invocation, or renamed benchmarks) produce a warning, not a failure.

2. **Tiled beats naive**: for every benchmark name containing a
   ``/naive/`` policy segment with a ``/tiled/`` twin, the tiled
   throughput must be at least ``--min-speedup`` times the naive one.

3. **Planned beats tiled on large graphs**: every large
   (``n:<large-n>``) Spmm/SpmmSkew benchmark under the ``planned``
   policy must reach at least ``--min-planned-speedup`` times its
   ``tiled`` twin, and at least one skewed-degree (SpmmSkew) large case
   must reach ``--min-skew-speedup`` — the inspector-executor payoff on
   the heavy-tailed degree distributions it targets.

4. **Compacted-exchange gate** (``--comm <json>``, from
   ``bench_comm_volume --json``): for every (machine, gpus, degree,
   permutation) group, the ``auto`` exchange mode must be at least
   ``--comm-min-speedup`` (default ~1.0) times as fast as ``dense`` —
   the cost-model selector must never regress a dense-friendly graph —
   and on the low-bandwidth gate rows (``--comm-gate-gpus``, degree
   ``<= --comm-gate-max-degree``) it must reach ``--comm-gate-speedup``
   (default 1.2x) with strictly fewer wire bytes than dense. When the
   committed baseline has a ``comm_volume`` section, each group's
   auto-over-dense speedup is also checked against it with the
   ``--max-regression`` allowance.

5. **Planner gate** (``--plan <json>``, from ``bench_planner --json``):
   for every (machine, gpus, n, degree, d) group, ``auto`` must be at
   least ``--plan-min-speedup`` (default ~1.0) times as fast as EVERY
   fixed strategy (1d / 15d / replicated) — the cost-model argmin must
   never lose to a strategy it could have chosen — and at least one
   group must exist where auto routes products to a non-1d executor and
   beats forced ``1d`` by ``--plan-win-speedup`` (default 1.15x): the
   mixture-of-parallelism payoff regimes the planner targets. When the
   committed baseline has a ``plan`` section, each group's auto-over-1d
   speedup is also checked against it with the ``--max-regression``
   allowance.

6. **Partitioner gate** (``--part <json>``, from
   ``bench_multinode_scaling --json``): for every (machine, gpus, nodes)
   group at ``gpus >= --part-gate-min-gpus``, the ``locality`` and
   ``hier`` partitioners must move strictly fewer wire bytes than
   ``random`` while keeping nnz imbalance at most
   ``--part-max-imbalance``; ``auto`` must never lose to ``random``
   (``--part-min-speedup``); and at least one group at
   ``--part-win-nodes`` nodes must show a locality/hier epoch win of
   ``--part-win-speedup`` (default 1.2x) over ``random`` — the
   cut-priced cluster scale-out payoff. When the committed baseline has
   a ``part`` section, each group's locality-over-random speedup is
   also checked against it with the ``--max-regression`` allowance.

7. **Sampled-pipeline gate** (``--cache <json>``, from
   ``bench_sampled_pipeline --json``): for every (dataset, gpus) group at
   ``gpus >= --cache-gate-min-gpus``, the pipelined engine under ``auto``
   cache pricing must beat the serialized cache-off baseline by
   ``--cache-pipe-speedup`` (default 1.3x); ``auto`` must never lose to
   the pipelined cache-off run (``--cache-min-speedup``); and the
   ``freq`` cache's hit rate must be monotone non-decreasing in the
   capacity fraction (within ``--cache-monotone-eps``). When the
   committed baseline has a ``cache`` section, each group's
   pipelined-auto-over-serialized speedup is also checked against it
   with the ``--max-regression`` allowance.

8. **Serving gate** (``--serve <json>``, from ``bench_serving --json``):
   for every (dataset, gpus, load, skew) group, the ``auto`` embedding
   cache must never lose QPS to ``off`` under the same batch policy
   (``--serve-min-speedup``), and at least one group at ``gpus >=
   --serve-gate-min-gpus`` must show the ``deadline`` micro-batcher
   beating ``per-request`` dispatch by ``--serve-batch-speedup``
   (default 1.2x) QPS at equal-or-better p99 — the batching payoff
   under saturating open-loop load. When the committed baseline has a
   ``serve`` section, each group's deadline-over-per-request QPS ratio
   is also checked against it with the ``--max-regression`` allowance.

9. **Workspace-pool gate** (``--mem <json>``, from
   ``bench_memory_pool --json``): on every (workload, dataset, gpus,
   layers) cell the pooled peak bytes must not exceed the static peak
   (the stream-ordered pool must never cost memory), every cell must
   report bit-identical numerics across ``MGGCN_POOL`` modes and the
   sched-fuzz seeds (``parity``) with a clean hazard ledger
   (``hazard_clean``), and at least one ``combined`` pipeline+serving
   cell at ``gpus >= --mem-gate-min-gpus`` must cut the footprint by
   ``--mem-combined-reduction`` (default 1.2x) — the cross-component
   reuse payoff of sharing one pool budget. When the committed baseline
   has a ``mem`` section, each cell's static-over-pooled reduction is
   also checked against it with the ``--max-regression`` allowance.

Checks 2 and 3 are machine-independent: both sides of each ratio come
from the same run on the same host. They are still noise-sensitive, so
CI runs the bench with ``--benchmark_enable_random_interleaving=true``
and ``--benchmark_repetitions=5``; this script prefers the ``median``
aggregate over per-iteration rows when repetitions are present. Check 4
runs in phantom mode, which is deterministic, so its ratios are exact;
so does check 5.

Refresh the baseline after an intentional perf change with::

    ./build/bench/bench_kernels --benchmark_format=json \
        --benchmark_out=kernels.json
    python3 scripts/check_perf.py kernels.json --update

Exit status is 0 when all checks pass, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent / "perf_baseline.json"
COUNTER = "flops_per_s"


def load_throughputs(path: Path) -> dict[str, float]:
    """Maps benchmark name -> flops_per_s for every benchmark reporting it.

    Aggregate rows (mean/median/stddev from --benchmark_repetitions) are
    skipped except the median, which replaces the per-iteration rows.
    """
    with open(path) as f:
        doc = json.load(f)
    plain: dict[str, float] = {}
    medians: dict[str, float] = {}
    for bench in doc.get("benchmarks", []):
        if COUNTER not in bench:
            continue
        value = float(bench[COUNTER])
        run_type = bench.get("run_type", "iteration")
        if run_type == "aggregate":
            if bench.get("aggregate_name") == "median":
                medians[bench.get("run_name", bench["name"])] = value
            continue
        plain[bench["name"]] = value
    plain.update(medians)
    return plain


def check_regressions(current: dict[str, float], baseline: dict[str, float],
                      max_regression: float) -> list[str]:
    failures = []
    compared = 0
    for name, base in sorted(baseline.items()):
        if name not in current:
            # A filtered run or a renamed benchmark, not a perf problem:
            # warn so the gap is visible, but do not fail the gate.
            print(f"warning: baseline benchmark not in current run: {name}",
                  file=sys.stderr)
            continue
        compared += 1
        floor = base * (1.0 - max_regression)
        if current[name] < floor:
            failures.append(
                f"regression: {name}: {current[name]:.3e} {COUNTER} < "
                f"{floor:.3e} (baseline {base:.3e}, allowed -"
                f"{max_regression:.0%})")
    if baseline and compared == 0:
        print("warning: no overlap between baseline and current benchmark "
              "names; regression check skipped", file=sys.stderr)
    return failures


def check_speedups(current: dict[str, float],
                   min_speedup: float) -> tuple[list[str], list[str]]:
    failures, report = [], []
    for name, naive in sorted(current.items()):
        if "/naive/" not in name:
            continue
        twin = name.replace("/naive/", "/tiled/")
        if twin not in current:
            continue
        speedup = current[twin] / naive if naive > 0 else float("inf")
        report.append(f"{twin}: {speedup:.2f}x over naive")
        if speedup < min_speedup:
            failures.append(
                f"speedup below floor: {twin} is {speedup:.2f}x over naive "
                f"(required {min_speedup:.2f}x)")
    return failures, report


def check_planned(current: dict[str, float], min_planned: float,
                  min_skew: float, large_n: int) -> tuple[list[str],
                                                          list[str]]:
    """The inspector-executor gate: planned vs tiled on large SpMM cases."""
    failures, report = [], []
    marker = f"/n:{large_n}/"
    best_skew: tuple[float, str] | None = None
    for name, tiled in sorted(current.items()):
        family = name.split("/", 1)[0]
        if family not in ("Spmm", "SpmmSkew"):
            continue
        if "/tiled/" not in name or marker not in name:
            continue
        twin = name.replace("/tiled/", "/planned/")
        if twin not in current:
            print(f"warning: no planned twin for {name}; skipping",
                  file=sys.stderr)
            continue
        speedup = current[twin] / tiled if tiled > 0 else float("inf")
        report.append(f"{twin}: {speedup:.2f}x over tiled")
        if speedup < min_planned:
            failures.append(
                f"planned below floor: {twin} is {speedup:.2f}x over tiled "
                f"(required {min_planned:.2f}x)")
        if family == "SpmmSkew":
            if best_skew is None or speedup > best_skew[0]:
                best_skew = (speedup, twin)
    if best_skew is None:
        if report:
            print("warning: no large SpmmSkew planned/tiled pair; skew gate "
                  "skipped", file=sys.stderr)
    elif best_skew[0] < min_skew:
        failures.append(
            f"skew gate: best skewed-degree planned speedup is "
            f"{best_skew[0]:.2f}x ({best_skew[1]}); at least one case must "
            f"reach {min_skew:.2f}x over tiled")
    return failures, report


def load_comm_rows(path: Path) -> list[dict]:
    with open(path) as f:
        doc = json.load(f)
    if doc.get("bench") != "comm_volume":
        raise ValueError(f"{path} is not a bench_comm_volume JSON "
                         f"(bench = {doc.get('bench')!r})")
    return [row for row in doc.get("rows", []) if not row.get("oom")]


def comm_groups(rows: list[dict]) -> dict[tuple, dict[str, dict]]:
    """(machine, gpus, avg_degree, permute) -> mode -> row."""
    groups: dict[tuple, dict[str, dict]] = {}
    for row in rows:
        key = (row["machine"], row["gpus"], row["avg_degree"],
               row["permute"])
        groups.setdefault(key, {})[row["mode"]] = row
    return groups


def check_comm(rows: list[dict], min_everywhere: float, gate_gpus: int,
               gate_max_degree: int, gate_speedup: float
               ) -> tuple[list[str], list[str], dict[str, float]]:
    """The auto-vs-dense exchange gate over bench_comm_volume rows."""
    failures, report = [], []
    speedups: dict[str, float] = {}
    gate_rows = 0
    for key, modes in sorted(comm_groups(rows).items()):
        machine, gpus, degree, permute = key
        dense, auto = modes.get("dense"), modes.get("auto")
        if dense is None or auto is None:
            continue
        if auto["epoch_seconds"] <= 0 or dense["epoch_seconds"] <= 0:
            continue
        speedup = dense["epoch_seconds"] / auto["epoch_seconds"]
        name = (f"{machine}/gpus:{gpus}/deg:{degree}/"
                f"perm:{'on' if permute else 'off'}")
        speedups[name] = speedup
        report.append(f"comm {name}: auto {speedup:.2f}x over dense")
        if speedup < min_everywhere:
            failures.append(
                f"comm: auto slower than dense on {name}: {speedup:.3f}x "
                f"(required >= {min_everywhere:.3f}x everywhere)")
        if gpus == gate_gpus and degree <= gate_max_degree:
            gate_rows += 1
            if speedup < gate_speedup:
                failures.append(
                    f"comm gate: {name} is {speedup:.2f}x over dense "
                    f"(the low-density low-bandwidth config must reach "
                    f"{gate_speedup:.2f}x)")
            if auto["wire_bytes"] >= dense["wire_bytes"]:
                failures.append(
                    f"comm gate: {name} moved {auto['wire_bytes']} wire "
                    f"bytes, not fewer than dense's {dense['wire_bytes']}")
    if gate_rows == 0:
        failures.append(
            f"comm gate: no rows at gpus={gate_gpus} with avg_degree <= "
            f"{gate_max_degree}; the low-bandwidth gate did not run")
    return failures, report, speedups


def load_plan_rows(path: Path) -> list[dict]:
    with open(path) as f:
        doc = json.load(f)
    if doc.get("bench") != "planner":
        raise ValueError(f"{path} is not a bench_planner JSON "
                         f"(bench = {doc.get('bench')!r})")
    return [row for row in doc.get("rows", []) if not row.get("oom")]


def plan_groups(rows: list[dict]) -> dict[tuple, dict[str, dict]]:
    """(machine, gpus, n, avg_degree, d) -> plan mode -> row."""
    groups: dict[tuple, dict[str, dict]] = {}
    for row in rows:
        key = (row["machine"], row["gpus"], row["n"], row["avg_degree"],
               row["d"])
        groups.setdefault(key, {})[row["plan"]] = row
    return groups


def check_plan(rows: list[dict], min_vs_fixed: float, win_speedup: float
               ) -> tuple[list[str], list[str], dict[str, float]]:
    """The auto-vs-fixed-strategy planner gate over bench_planner rows."""
    failures, report = [], []
    speedups: dict[str, float] = {}
    non_1d_wins = 0
    for key, modes in sorted(plan_groups(rows).items()):
        machine, gpus, n, degree, d = key
        auto = modes.get("auto")
        if auto is None or auto["epoch_seconds"] <= 0:
            continue
        name = f"{machine}/gpus:{gpus}/n:{n}/deg:{degree}/d:{d}"
        fixed = {mode: row for mode, row in modes.items()
                 if mode != "auto" and row["epoch_seconds"] > 0}
        for mode, row in sorted(fixed.items()):
            ratio = row["epoch_seconds"] / auto["epoch_seconds"]
            if ratio < min_vs_fixed:
                failures.append(
                    f"plan: auto slower than forced {mode} on {name}: "
                    f"{ratio:.3f}x (required >= {min_vs_fixed:.3f}x against "
                    f"every fixed strategy)")
        if "1d" in fixed:
            vs_1d = fixed["1d"]["epoch_seconds"] / auto["epoch_seconds"]
            speedups[name] = vs_1d
            plan = auto.get("plan_counters", {})
            routed = (plan.get("products_15d", 0) +
                      plan.get("products_replicated", 0))
            report.append(
                f"plan {name}: auto {vs_1d:.2f}x over 1d "
                f"(products 1d/15d/rep = {plan.get('products_1d', 0)}/"
                f"{plan.get('products_15d', 0)}/"
                f"{plan.get('products_replicated', 0)})")
            if routed > 0 and vs_1d >= win_speedup:
                non_1d_wins += 1
    if not speedups:
        failures.append("plan gate: no (auto, 1d) row pairs found; the "
                        "planner gate did not run")
    elif non_1d_wins == 0:
        failures.append(
            f"plan gate: no config where auto routes products off the 1d "
            f"path and beats forced 1d by {win_speedup:.2f}x; the "
            f"mixture-of-parallelism payoff regimes are gone")
    return failures, report, speedups


def load_part_rows(path: Path) -> list[dict]:
    with open(path) as f:
        doc = json.load(f)
    if doc.get("bench") != "multinode_scaling":
        raise ValueError(f"{path} is not a bench_multinode_scaling JSON "
                         f"(bench = {doc.get('bench')!r})")
    return [row for row in doc.get("rows", []) if not row.get("oom")]


def part_groups(rows: list[dict]) -> dict[tuple, dict[str, dict]]:
    """(machine, gpus, nodes) -> partitioner mode -> row."""
    groups: dict[tuple, dict[str, dict]] = {}
    for row in rows:
        key = (row["machine"], row["gpus"], row["nodes"])
        groups.setdefault(key, {})[row["part"]] = row
    return groups


def check_part(rows: list[dict], min_speedup: float, gate_min_gpus: int,
               max_imbalance: float, win_speedup: float, win_nodes: int
               ) -> tuple[list[str], list[str], dict[str, float]]:
    """The partitioner gate over bench_multinode_scaling rows."""
    failures, report = [], []
    speedups: dict[str, float] = {}
    best_win: tuple[float, str] | None = None
    win_groups = 0
    for key, modes in sorted(part_groups(rows).items()):
        machine, gpus, nodes = key
        random = modes.get("random")
        if random is None or random["epoch_seconds"] <= 0:
            continue
        name = f"{machine}/gpus:{gpus}/nodes:{nodes}"
        gated = gpus >= gate_min_gpus
        for mode in ("locality", "hier", "auto"):
            row = modes.get(mode)
            if row is None or row["epoch_seconds"] <= 0:
                continue
            speedup = random["epoch_seconds"] / row["epoch_seconds"]
            report.append(f"part {name}/{mode}: {speedup:.2f}x over random, "
                          f"wire {row['wire_bytes']} vs "
                          f"{random['wire_bytes']}, imbalance "
                          f"{row['imbalance']:.3f}")
            if mode == "locality":
                speedups[name] = speedup
            if not gated:
                continue
            if row["imbalance"] > max_imbalance:
                failures.append(
                    f"part gate: {name}/{mode} imbalance "
                    f"{row['imbalance']:.3f} exceeds the "
                    f"{max_imbalance:.2f} balance contract")
            if mode in ("locality", "hier"):
                if row["wire_bytes"] >= random["wire_bytes"]:
                    failures.append(
                        f"part gate: {name}/{mode} moved "
                        f"{row['wire_bytes']} wire bytes, not fewer than "
                        f"random's {random['wire_bytes']}")
                if nodes == win_nodes:
                    win_groups += 1
                    if best_win is None or speedup > best_win[0]:
                        best_win = (speedup, f"{name}/{mode}")
            if mode == "auto" and speedup < min_speedup:
                failures.append(
                    f"part gate: auto slower than random on {name}: "
                    f"{speedup:.3f}x (required >= {min_speedup:.3f}x; the "
                    f"cost-model selector must never lose)")
    if win_groups == 0:
        failures.append(
            f"part gate: no locality/hier rows at nodes={win_nodes} with "
            f"gpus >= {gate_min_gpus}; the cluster scale-out gate did not "
            f"run")
    elif best_win is not None and best_win[0] < win_speedup:
        failures.append(
            f"part gate: best locality/hier epoch win at nodes={win_nodes} "
            f"is {best_win[0]:.2f}x ({best_win[1]}); at least one must "
            f"reach {win_speedup:.2f}x over random")
    return failures, report, speedups


def load_cache_rows(path: Path) -> list[dict]:
    with open(path) as f:
        doc = json.load(f)
    if doc.get("bench") != "sampled_pipeline":
        raise ValueError(f"{path} is not a bench_sampled_pipeline JSON "
                         f"(bench = {doc.get('bench')!r})")
    return [row for row in doc.get("rows", []) if not row.get("oom")]


def cache_groups(rows: list[dict]) -> dict[tuple, list[dict]]:
    """(dataset, gpus) -> rows of that sweep cell."""
    groups: dict[tuple, list[dict]] = {}
    for row in rows:
        groups.setdefault((row["dataset"], row["gpus"]), []).append(row)
    return groups


def check_cache(rows: list[dict], pipe_speedup: float, gate_min_gpus: int,
                min_vs_off: float, monotone_eps: float
                ) -> tuple[list[str], list[str], dict[str, float]]:
    """The sampled-pipeline gate over bench_sampled_pipeline rows."""
    failures, report = [], []
    speedups: dict[str, float] = {}
    gate_groups = 0
    for key, group in sorted(cache_groups(rows).items()):
        dataset, gpus = key
        name = f"{dataset}/gpus:{gpus}"

        def pick(engine: str, mode: str) -> dict | None:
            rows_ = [r for r in group if r["engine"] == engine
                     and r["cache_mode"] == mode and r["seconds"] > 0]
            return rows_[0] if rows_ else None

        serial = pick("serialized", "off")
        pipe_off = pick("pipelined", "off")
        pipe_auto = pick("pipelined", "auto")
        if serial is None or pipe_off is None or pipe_auto is None:
            print(f"warning: cache group {name} lacks a serialized/off/auto "
                  f"row; skipped", file=sys.stderr)
            continue

        speedup = serial["seconds"] / pipe_auto["seconds"]
        speedups[name] = speedup
        vs_off = pipe_off["seconds"] / pipe_auto["seconds"]
        report.append(
            f"cache {name}: pipelined+auto {speedup:.2f}x over serialized "
            f"({vs_off:.2f}x over cache-off, hit rate "
            f"{pipe_auto['hit_rate']:.3f}, resolved "
            f"{pipe_auto.get('resolved_mode', '?')})")

        if vs_off < min_vs_off:
            failures.append(
                f"cache: auto slower than cache-off on {name}: "
                f"{vs_off:.3f}x (required >= {min_vs_off:.3f}x; the "
                f"cost-model selector must never lose)")

        freq = sorted((r for r in group if r["engine"] == "pipelined"
                       and r["cache_mode"] == "freq"),
                      key=lambda r: r["capacity_fraction"])
        for lo, hi in zip(freq, freq[1:]):
            if hi["hit_rate"] < lo["hit_rate"] - monotone_eps:
                failures.append(
                    f"cache: hit rate not monotone in capacity on {name}: "
                    f"{lo['hit_rate']:.3f} @ {lo['capacity_fraction']} -> "
                    f"{hi['hit_rate']:.3f} @ {hi['capacity_fraction']}")

        if gpus >= gate_min_gpus:
            gate_groups += 1
            if speedup < pipe_speedup:
                failures.append(
                    f"cache gate: {name} pipelined+auto is {speedup:.2f}x "
                    f"over serialized (required {pipe_speedup:.2f}x)")
    if gate_groups == 0:
        failures.append(
            f"cache gate: no groups at gpus >= {gate_min_gpus}; the "
            f"pipeline-overlap gate did not run")
    return failures, report, speedups


def load_serve_rows(path: Path) -> list[dict]:
    with open(path) as f:
        doc = json.load(f)
    if doc.get("bench") != "serving":
        raise ValueError(f"{path} is not a bench_serving JSON "
                         f"(bench = {doc.get('bench')!r})")
    return [row for row in doc.get("rows", []) if row.get("qps", 0) > 0]


def serve_groups(rows: list[dict]) -> dict[tuple, dict[tuple, dict]]:
    """(dataset, gpus, load_qps, skew) -> (policy, cache_mode) -> row."""
    groups: dict[tuple, dict[tuple, dict]] = {}
    for row in rows:
        key = (row["dataset"], row["gpus"], row["load_qps"], row["skew"])
        groups.setdefault(key, {})[(row["policy"], row["cache_mode"])] = row
    return groups


def load_mem_rows(path: Path) -> list[dict]:
    with open(path) as f:
        doc = json.load(f)
    if doc.get("bench") != "memory-pool":
        raise ValueError(f"{path} is not a bench_memory_pool JSON "
                         f"(bench = {doc.get('bench')!r})")
    return doc.get("rows", [])


def check_mem(rows: list[dict], combined_reduction: float,
              gate_min_gpus: int) -> tuple[list[str], list[str],
                                           dict[str, float]]:
    """The workspace-pool gate over bench_memory_pool rows."""
    failures, report = [], []
    reductions: dict[str, float] = {}
    best_combined: tuple[float, str] | None = None
    combined_gate_rows = 0
    for row in rows:
        name = (f"{row['workload']}/{row['dataset']}/gpus:{row['gpus']}"
                f"/layers:{row['layers']}")
        reduction = row.get("reduction", 0.0)
        reductions[name] = reduction
        report.append(
            f"mem {name}: pooled {row['pooled_peak_bytes']} B vs static "
            f"{row['static_peak_bytes']} B ({reduction:.2f}x, "
            f"{row.get('reuse_hits', 0)} reuse hits)")

        # The pool must never cost memory: exact-size slabs, the
        # split-waste cap, and trim-before-grow keep the pooled ledger at
        # or below the static scheme's on every workload.
        if row["pooled_peak_bytes"] > row["static_peak_bytes"]:
            failures.append(
                f"mem: pooled peak exceeds static on {name}: "
                f"{row['pooled_peak_bytes']} B > "
                f"{row['static_peak_bytes']} B")
        # Recycling changes where scratch lives, never what it holds.
        if not row.get("parity", False):
            failures.append(
                f"mem: numerics not bit-identical across MGGCN_POOL modes "
                f"x sched-fuzz seeds on {name}")
        if not row.get("hazard_clean", False):
            failures.append(
                f"mem: hazard checker flagged the recycling on {name}")

        if row["workload"] == "combined" and row["gpus"] >= gate_min_gpus:
            combined_gate_rows += 1
            if best_combined is None or reduction > best_combined[0]:
                best_combined = (reduction, name)
    if combined_gate_rows == 0:
        failures.append(
            f"mem gate: no combined pipeline+serving cell at gpus >= "
            f"{gate_min_gpus}; the cross-component reuse gate did not run")
    elif best_combined is None or best_combined[0] < combined_reduction:
        where = (f" (best: {best_combined[1]} at {best_combined[0]:.2f}x)"
                 if best_combined else "")
        failures.append(
            f"mem gate: no combined cell reaches a "
            f"{combined_reduction:.2f}x reuse-driven footprint "
            f"reduction{where}")
    return failures, report, reductions


def check_mem_baseline(reductions: dict[str, float],
                       baseline: dict[str, float],
                       max_regression: float) -> list[str]:
    failures = []
    for name, base in sorted(baseline.items()):
        if name not in reductions:
            print(f"warning: baseline mem config not in current run: "
                  f"{name}", file=sys.stderr)
            continue
        floor = base * (1.0 - max_regression)
        if reductions[name] < floor:
            failures.append(
                f"mem regression: {name}: footprint reduction is "
                f"{reductions[name]:.2f}x < {floor:.2f}x "
                f"(baseline {base:.2f}x, allowed -{max_regression:.0%})")
    return failures


def check_serve(rows: list[dict], batch_speedup: float, gate_min_gpus: int,
                min_vs_off: float) -> tuple[list[str], list[str],
                                            dict[str, float]]:
    """The serving gate over bench_serving rows."""
    failures, report = [], []
    speedups: dict[str, float] = {}
    gate_groups = 0
    best_win: tuple[float, str] | None = None
    for key, cells in sorted(serve_groups(rows).items()):
        dataset, gpus, load, skew = key
        name = f"{dataset}/gpus:{gpus}/load:{load}/skew:{skew}"

        # The auto cache must never lose QPS to off under the same policy.
        for policy in ("per-request", "fixed", "deadline"):
            off = cells.get((policy, "off"))
            auto = cells.get((policy, "auto"))
            if off is None or auto is None or off["qps"] <= 0:
                continue
            ratio = auto["qps"] / off["qps"]
            if ratio < min_vs_off:
                failures.append(
                    f"serve: auto cache slower than off on {name}/{policy}: "
                    f"{ratio:.3f}x (required >= {min_vs_off:.3f}x; the "
                    f"cache planner must never lose)")

        per_request = cells.get(("per-request", "off"))
        deadline = cells.get(("deadline", "off"))
        if per_request is None or deadline is None or \
                per_request["qps"] <= 0:
            continue
        speedup = deadline["qps"] / per_request["qps"]
        speedups[name] = speedup
        p99_ok = deadline["p99"] <= per_request["p99"]
        report.append(
            f"serve {name}: deadline {speedup:.2f}x QPS over per-request "
            f"(p99 {deadline['p99'] * 1e6:.1f}us vs "
            f"{per_request['p99'] * 1e6:.1f}us, mean batch "
            f"{deadline['mean_batch']:.1f})")
        if gpus >= gate_min_gpus:
            gate_groups += 1
            if p99_ok and (best_win is None or speedup > best_win[0]):
                best_win = (speedup, name)
    if gate_groups == 0:
        failures.append(
            f"serve gate: no groups at gpus >= {gate_min_gpus}; the "
            f"micro-batching gate did not run")
    elif best_win is None or best_win[0] < batch_speedup:
        where = f" (best: {best_win[1]} at {best_win[0]:.2f}x)" \
            if best_win else ""
        failures.append(
            f"serve gate: no group where deadline batching reaches "
            f"{batch_speedup:.2f}x per-request QPS at equal-or-better "
            f"p99{where}")
    return failures, report, speedups


def check_serve_baseline(speedups: dict[str, float],
                         baseline: dict[str, float],
                         max_regression: float) -> list[str]:
    failures = []
    for name, base in sorted(baseline.items()):
        if name not in speedups:
            print(f"warning: baseline serve config not in current run: "
                  f"{name}", file=sys.stderr)
            continue
        floor = base * (1.0 - max_regression)
        if speedups[name] < floor:
            failures.append(
                f"serve regression: {name}: deadline is "
                f"{speedups[name]:.2f}x over per-request < {floor:.2f}x "
                f"(baseline {base:.2f}x, allowed -{max_regression:.0%})")
    return failures


def check_cache_baseline(speedups: dict[str, float],
                         baseline: dict[str, float],
                         max_regression: float) -> list[str]:
    failures = []
    for name, base in sorted(baseline.items()):
        if name not in speedups:
            print(f"warning: baseline cache config not in current run: "
                  f"{name}", file=sys.stderr)
            continue
        floor = base * (1.0 - max_regression)
        if speedups[name] < floor:
            failures.append(
                f"cache regression: {name}: pipelined+auto is "
                f"{speedups[name]:.2f}x over serialized < {floor:.2f}x "
                f"(baseline {base:.2f}x, allowed -{max_regression:.0%})")
    return failures


def check_part_baseline(speedups: dict[str, float],
                        baseline: dict[str, float],
                        max_regression: float) -> list[str]:
    failures = []
    for name, base in sorted(baseline.items()):
        if name not in speedups:
            print(f"warning: baseline part config not in current run: "
                  f"{name}", file=sys.stderr)
            continue
        floor = base * (1.0 - max_regression)
        if speedups[name] < floor:
            failures.append(
                f"part regression: {name}: locality is "
                f"{speedups[name]:.2f}x over random < {floor:.2f}x "
                f"(baseline {base:.2f}x, allowed -{max_regression:.0%})")
    return failures


def check_plan_baseline(speedups: dict[str, float],
                        baseline: dict[str, float],
                        max_regression: float) -> list[str]:
    failures = []
    for name, base in sorted(baseline.items()):
        if name not in speedups:
            print(f"warning: baseline plan config not in current run: "
                  f"{name}", file=sys.stderr)
            continue
        floor = base * (1.0 - max_regression)
        if speedups[name] < floor:
            failures.append(
                f"plan regression: {name}: auto is {speedups[name]:.2f}x "
                f"over 1d < {floor:.2f}x (baseline {base:.2f}x, allowed "
                f"-{max_regression:.0%})")
    return failures


def check_comm_baseline(speedups: dict[str, float],
                        baseline: dict[str, float],
                        max_regression: float) -> list[str]:
    failures = []
    for name, base in sorted(baseline.items()):
        if name not in speedups:
            print(f"warning: baseline comm config not in current run: "
                  f"{name}", file=sys.stderr)
            continue
        floor = base * (1.0 - max_regression)
        if speedups[name] < floor:
            failures.append(
                f"comm regression: {name}: auto is {speedups[name]:.2f}x "
                f"over dense < {floor:.2f}x (baseline {base:.2f}x, allowed "
                f"-{max_regression:.0%})")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, nargs="?", default=None,
                        help="bench_kernels JSON from this run")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="committed baseline JSON (default: %(default)s)")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional throughput drop vs the "
                        "baseline (default: %(default)s)")
    parser.add_argument("--min-speedup", type=float, default=1.2,
                        help="required tiled-over-naive throughput ratio "
                        "(default: %(default)s)")
    parser.add_argument("--min-planned-speedup", type=float, default=1.0,
                        help="required planned-over-tiled ratio on every "
                        "large Spmm/SpmmSkew case (default: %(default)s)")
    parser.add_argument("--min-skew-speedup", type=float, default=1.2,
                        help="planned-over-tiled ratio at least one large "
                        "SpmmSkew case must reach (default: %(default)s)")
    parser.add_argument("--large-n", type=int, default=16384,
                        help="row count that marks a case as large for the "
                        "planned gates (default: %(default)s)")
    parser.add_argument("--comm", type=Path, default=None,
                        help="bench_comm_volume JSON to gate (check 4)")
    parser.add_argument("--comm-min-speedup", type=float, default=0.999,
                        help="auto-over-dense epoch ratio required on every "
                        "comm config (default: %(default)s)")
    parser.add_argument("--comm-gate-gpus", type=int, default=2,
                        help="GPU count of the low-bandwidth gate config "
                        "(cube-mesh pairs see 2 of 6 links; default: "
                        "%(default)s)")
    parser.add_argument("--comm-gate-max-degree", type=int, default=2,
                        help="largest avg degree counted as the low-density "
                        "gate (default: %(default)s)")
    parser.add_argument("--comm-gate-speedup", type=float, default=1.2,
                        help="auto-over-dense ratio required on the gate "
                        "rows (default: %(default)s)")
    parser.add_argument("--plan", type=Path, default=None,
                        help="bench_planner JSON to gate (check 5)")
    parser.add_argument("--plan-min-speedup", type=float, default=0.999,
                        help="auto-over-fixed epoch ratio required against "
                        "every fixed strategy (default: %(default)s)")
    parser.add_argument("--plan-win-speedup", type=float, default=1.15,
                        help="auto-over-1d ratio at least one non-1d-routed "
                        "config must reach (default: %(default)s)")
    parser.add_argument("--part", type=Path, default=None,
                        help="bench_multinode_scaling JSON to gate (check 6)")
    parser.add_argument("--part-min-speedup", type=float, default=0.999,
                        help="auto-over-random epoch ratio required on every "
                        "gated partitioner config (default: %(default)s)")
    parser.add_argument("--part-gate-min-gpus", type=int, default=8,
                        help="smallest GPU count the partitioner gate "
                        "applies to (default: %(default)s)")
    parser.add_argument("--part-max-imbalance", type=float, default=1.15,
                        help="largest nnz imbalance a locality/hier/auto "
                        "partition may show (default: %(default)s)")
    parser.add_argument("--part-win-speedup", type=float, default=1.2,
                        help="locality/hier-over-random ratio at least one "
                        "multi-node config must reach (default: %(default)s)")
    parser.add_argument("--part-win-nodes", type=int, default=8,
                        help="node count of the cluster scale-out win rows "
                        "(default: %(default)s)")
    parser.add_argument("--cache", type=Path, default=None,
                        help="bench_sampled_pipeline JSON to gate (check 7)")
    parser.add_argument("--cache-pipe-speedup", type=float, default=1.3,
                        help="pipelined+auto-over-serialized epoch ratio "
                        "required on every gated group (default: %(default)s)")
    parser.add_argument("--cache-gate-min-gpus", type=int, default=4,
                        help="smallest device count the pipeline gate "
                        "applies to (default: %(default)s)")
    parser.add_argument("--cache-min-speedup", type=float, default=0.999,
                        help="auto-over-cache-off epoch ratio required on "
                        "every group (default: %(default)s)")
    parser.add_argument("--cache-monotone-eps", type=float, default=0.005,
                        help="allowed hit-rate dip between adjacent cache "
                        "capacities (default: %(default)s)")
    parser.add_argument("--serve", type=Path, default=None,
                        help="bench_serving JSON to gate (check 8)")
    parser.add_argument("--serve-batch-speedup", type=float, default=1.2,
                        help="deadline-over-per-request QPS ratio at least "
                        "one gated group must reach at equal-or-better p99 "
                        "(default: %(default)s)")
    parser.add_argument("--serve-gate-min-gpus", type=int, default=4,
                        help="smallest device count the micro-batching gate "
                        "applies to (default: %(default)s)")
    parser.add_argument("--serve-min-speedup", type=float, default=0.999,
                        help="auto-cache-over-off QPS ratio required on "
                        "every serving config (default: %(default)s)")
    parser.add_argument("--mem", type=Path, default=None,
                        help="bench_memory_pool JSON to gate (check 9)")
    parser.add_argument("--mem-combined-reduction", type=float, default=1.2,
                        help="static-over-pooled peak-bytes ratio at least "
                        "one combined pipeline+serving cell must reach "
                        "(default: %(default)s)")
    parser.add_argument("--mem-gate-min-gpus", type=int, default=4,
                        help="smallest device count the combined-reduction "
                        "gate applies to (default: %(default)s)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current run "
                        "instead of checking against it")
    args = parser.parse_args()

    if (args.current is None and args.comm is None and args.plan is None
            and args.part is None and args.cache is None
            and args.serve is None and args.mem is None):
        print("error: pass a bench_kernels JSON, --comm <json>, "
              "--plan <json>, --part <json>, --cache <json>, "
              "--serve <json>, --mem <json>, or a combination",
              file=sys.stderr)
        return 1

    current: dict[str, float] = {}
    if args.current is not None:
        current = load_throughputs(args.current)
        if not current:
            print(f"error: no '{COUNTER}' counters in {args.current}",
                  file=sys.stderr)
            return 1

    comm_rows = load_comm_rows(args.comm) if args.comm is not None else None
    comm_speedups: dict[str, float] = {}
    plan_rows = load_plan_rows(args.plan) if args.plan is not None else None
    plan_speedups: dict[str, float] = {}
    part_rows = load_part_rows(args.part) if args.part is not None else None
    part_speedups: dict[str, float] = {}
    cache_rows = (load_cache_rows(args.cache)
                  if args.cache is not None else None)
    cache_speedups: dict[str, float] = {}
    serve_rows = (load_serve_rows(args.serve)
                  if args.serve is not None else None)
    serve_speedups: dict[str, float] = {}
    mem_rows = load_mem_rows(args.mem) if args.mem is not None else None
    mem_reductions: dict[str, float] = {}

    if args.update:
        payload = {}
        if args.baseline.exists():
            payload = json.loads(args.baseline.read_text())
        payload.setdefault(
            "_comment",
            "Recorded bench_kernels throughput; refresh with "
            "scripts/check_perf.py <json> --update after an "
            "intentional perf change.")
        payload["counter"] = COUNTER
        if current:
            payload["benchmarks"] = {k: current[k] for k in sorted(current)}
        if comm_rows is not None:
            _, _, comm_speedups = check_comm(
                comm_rows, args.comm_min_speedup, args.comm_gate_gpus,
                args.comm_gate_max_degree, args.comm_gate_speedup)
            payload["comm_volume"] = {
                k: comm_speedups[k] for k in sorted(comm_speedups)}
        if plan_rows is not None:
            _, _, plan_speedups = check_plan(
                plan_rows, args.plan_min_speedup, args.plan_win_speedup)
            payload["plan"] = {
                k: plan_speedups[k] for k in sorted(plan_speedups)}
        if part_rows is not None:
            _, _, part_speedups = check_part(
                part_rows, args.part_min_speedup, args.part_gate_min_gpus,
                args.part_max_imbalance, args.part_win_speedup,
                args.part_win_nodes)
            payload["part"] = {
                k: part_speedups[k] for k in sorted(part_speedups)}
        if cache_rows is not None:
            _, _, cache_speedups = check_cache(
                cache_rows, args.cache_pipe_speedup,
                args.cache_gate_min_gpus, args.cache_min_speedup,
                args.cache_monotone_eps)
            payload["cache"] = {
                k: cache_speedups[k] for k in sorted(cache_speedups)}
        if serve_rows is not None:
            _, _, serve_speedups = check_serve(
                serve_rows, args.serve_batch_speedup,
                args.serve_gate_min_gpus, args.serve_min_speedup)
            payload["serve"] = {
                k: serve_speedups[k] for k in sorted(serve_speedups)}
        if mem_rows is not None:
            _, _, mem_reductions = check_mem(
                mem_rows, args.mem_combined_reduction,
                args.mem_gate_min_gpus)
            payload["mem"] = {
                k: mem_reductions[k] for k in sorted(mem_reductions)}
        args.baseline.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"baseline updated: {args.baseline} ({len(current)} "
              f"benchmarks, {len(comm_speedups)} comm configs, "
              f"{len(plan_speedups)} plan configs, "
              f"{len(part_speedups)} part configs, "
              f"{len(cache_speedups)} cache configs, "
              f"{len(serve_speedups)} serve configs, "
              f"{len(mem_reductions)} mem cells)")
        return 0

    failures: list[str] = []
    baseline_doc: dict = {}
    if args.baseline.exists():
        baseline_doc = json.loads(args.baseline.read_text())
        if current:
            failures += check_regressions(current,
                                          baseline_doc["benchmarks"],
                                          args.max_regression)
    else:
        print(f"warning: baseline {args.baseline} not found; skipping the "
              f"regression check", file=sys.stderr)

    report: list[str] = []
    planned_report: list[str] = []
    if current:
        speedup_failures, report = check_speedups(current, args.min_speedup)
        failures += speedup_failures
        planned_failures, planned_report = check_planned(
            current, args.min_planned_speedup, args.min_skew_speedup,
            args.large_n)
        failures += planned_failures

    comm_report: list[str] = []
    if comm_rows is not None:
        comm_failures, comm_report, comm_speedups = check_comm(
            comm_rows, args.comm_min_speedup, args.comm_gate_gpus,
            args.comm_gate_max_degree, args.comm_gate_speedup)
        failures += comm_failures
        if "comm_volume" in baseline_doc:
            failures += check_comm_baseline(comm_speedups,
                                            baseline_doc["comm_volume"],
                                            args.max_regression)

    plan_report: list[str] = []
    if plan_rows is not None:
        plan_failures, plan_report, plan_speedups = check_plan(
            plan_rows, args.plan_min_speedup, args.plan_win_speedup)
        failures += plan_failures
        if "plan" in baseline_doc:
            failures += check_plan_baseline(plan_speedups,
                                            baseline_doc["plan"],
                                            args.max_regression)
    part_report: list[str] = []
    if part_rows is not None:
        part_failures, part_report, part_speedups = check_part(
            part_rows, args.part_min_speedup, args.part_gate_min_gpus,
            args.part_max_imbalance, args.part_win_speedup,
            args.part_win_nodes)
        failures += part_failures
        if "part" in baseline_doc:
            failures += check_part_baseline(part_speedups,
                                            baseline_doc["part"],
                                            args.max_regression)
    cache_report: list[str] = []
    if cache_rows is not None:
        cache_failures, cache_report, cache_speedups = check_cache(
            cache_rows, args.cache_pipe_speedup, args.cache_gate_min_gpus,
            args.cache_min_speedup, args.cache_monotone_eps)
        failures += cache_failures
        if "cache" in baseline_doc:
            failures += check_cache_baseline(cache_speedups,
                                             baseline_doc["cache"],
                                             args.max_regression)
    serve_report: list[str] = []
    if serve_rows is not None:
        serve_failures, serve_report, serve_speedups = check_serve(
            serve_rows, args.serve_batch_speedup, args.serve_gate_min_gpus,
            args.serve_min_speedup)
        failures += serve_failures
        if "serve" in baseline_doc:
            failures += check_serve_baseline(serve_speedups,
                                             baseline_doc["serve"],
                                             args.max_regression)
    mem_report: list[str] = []
    if mem_rows is not None:
        mem_failures, mem_report, mem_reductions = check_mem(
            mem_rows, args.mem_combined_reduction, args.mem_gate_min_gpus)
        failures += mem_failures
        if "mem" in baseline_doc:
            failures += check_mem_baseline(mem_reductions,
                                           baseline_doc["mem"],
                                           args.max_regression)
    for line in (report + planned_report + comm_report + plan_report +
                 part_report + cache_report + serve_report + mem_report):
        print(line)

    if failures:
        print(f"\ncheck_perf: {len(failures)} failure(s)", file=sys.stderr)
        for f in failures:
            print(f"  FAIL: {f}", file=sys.stderr)
        return 1
    print(f"check_perf: OK ({len(current)} benchmarks, "
          f"{len(comm_speedups)} comm configs, "
          f"{len(plan_speedups)} plan configs, "
          f"{len(part_speedups)} part configs, "
          f"{len(cache_speedups)} cache configs, "
          f"{len(serve_speedups)} serve configs, "
          f"{len(mem_reductions)} mem cells checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
