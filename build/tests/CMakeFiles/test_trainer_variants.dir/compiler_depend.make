# Empty compiler generated dependencies file for test_trainer_variants.
# This may be replaced when dependencies are built.
