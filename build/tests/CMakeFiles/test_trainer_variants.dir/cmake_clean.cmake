file(REMOVE_RECURSE
  "CMakeFiles/test_trainer_variants.dir/test_trainer_variants.cpp.o"
  "CMakeFiles/test_trainer_variants.dir/test_trainer_variants.cpp.o.d"
  "test_trainer_variants"
  "test_trainer_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trainer_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
