file(REMOVE_RECURSE
  "CMakeFiles/test_gcn_kernels.dir/test_gcn_kernels.cpp.o"
  "CMakeFiles/test_gcn_kernels.dir/test_gcn_kernels.cpp.o.d"
  "test_gcn_kernels"
  "test_gcn_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gcn_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
