# Empty dependencies file for test_gcn_kernels.
# This may be replaced when dependencies are built.
