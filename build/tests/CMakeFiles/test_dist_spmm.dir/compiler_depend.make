# Empty compiler generated dependencies file for test_dist_spmm.
# This may be replaced when dependencies are built.
