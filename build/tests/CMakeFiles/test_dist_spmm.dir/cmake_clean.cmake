file(REMOVE_RECURSE
  "CMakeFiles/test_dist_spmm.dir/test_dist_spmm.cpp.o"
  "CMakeFiles/test_dist_spmm.dir/test_dist_spmm.cpp.o.d"
  "test_dist_spmm"
  "test_dist_spmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_spmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
