# Empty compiler generated dependencies file for test_dist_spmm_15d.
# This may be replaced when dependencies are built.
