file(REMOVE_RECURSE
  "CMakeFiles/test_dist_spmm_15d.dir/test_dist_spmm_15d.cpp.o"
  "CMakeFiles/test_dist_spmm_15d.dir/test_dist_spmm_15d.cpp.o.d"
  "test_dist_spmm_15d"
  "test_dist_spmm_15d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_spmm_15d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
