# Empty compiler generated dependencies file for bench_table3_mggcn_a100.
# This may be replaced when dependencies are built.
