# Empty dependencies file for bench_fig9_avg_degree.
# This may be replaced when dependencies are built.
