file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_15d.dir/bench_ablation_15d.cpp.o"
  "CMakeFiles/bench_ablation_15d.dir/bench_ablation_15d.cpp.o.d"
  "bench_ablation_15d"
  "bench_ablation_15d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_15d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
