# Empty dependencies file for bench_ablation_15d.
# This may be replaced when dependencies are built.
