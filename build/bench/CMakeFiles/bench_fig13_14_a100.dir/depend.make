# Empty dependencies file for bench_fig13_14_a100.
# This may be replaced when dependencies are built.
