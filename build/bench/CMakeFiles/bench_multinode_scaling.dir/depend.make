# Empty dependencies file for bench_multinode_scaling.
# This may be replaced when dependencies are built.
