file(REMOVE_RECURSE
  "CMakeFiles/bench_multinode_scaling.dir/bench_multinode_scaling.cpp.o"
  "CMakeFiles/bench_multinode_scaling.dir/bench_multinode_scaling.cpp.o.d"
  "bench_multinode_scaling"
  "bench_multinode_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multinode_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
