file(REMOVE_RECURSE
  "CMakeFiles/bench_sec51_partitioning.dir/bench_sec51_partitioning.cpp.o"
  "CMakeFiles/bench_sec51_partitioning.dir/bench_sec51_partitioning.cpp.o.d"
  "bench_sec51_partitioning"
  "bench_sec51_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec51_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
