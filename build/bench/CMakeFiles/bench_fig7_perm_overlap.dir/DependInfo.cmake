
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_perm_overlap.cpp" "bench/CMakeFiles/bench_fig7_perm_overlap.dir/bench_fig7_perm_overlap.cpp.o" "gcc" "bench/CMakeFiles/bench_fig7_perm_overlap.dir/bench_fig7_perm_overlap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mggcn_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mggcn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/mggcn_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mggcn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/mggcn_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/dense/CMakeFiles/mggcn_dense.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mggcn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mggcn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
