# Empty compiler generated dependencies file for bench_fig8_overlap_timeline.
# This may be replaced when dependencies are built.
