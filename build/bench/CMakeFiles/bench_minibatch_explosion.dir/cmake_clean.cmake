file(REMOVE_RECURSE
  "CMakeFiles/bench_minibatch_explosion.dir/bench_minibatch_explosion.cpp.o"
  "CMakeFiles/bench_minibatch_explosion.dir/bench_minibatch_explosion.cpp.o.d"
  "bench_minibatch_explosion"
  "bench_minibatch_explosion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_minibatch_explosion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
