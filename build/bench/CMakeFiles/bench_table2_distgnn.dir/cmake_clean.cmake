file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_distgnn.dir/bench_table2_distgnn.cpp.o"
  "CMakeFiles/bench_table2_distgnn.dir/bench_table2_distgnn.cpp.o.d"
  "bench_table2_distgnn"
  "bench_table2_distgnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_distgnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
