# Empty dependencies file for bench_table2_distgnn.
# This may be replaced when dependencies are built.
