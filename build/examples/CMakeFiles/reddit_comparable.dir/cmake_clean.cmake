file(REMOVE_RECURSE
  "CMakeFiles/reddit_comparable.dir/reddit_comparable.cpp.o"
  "CMakeFiles/reddit_comparable.dir/reddit_comparable.cpp.o.d"
  "reddit_comparable"
  "reddit_comparable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reddit_comparable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
