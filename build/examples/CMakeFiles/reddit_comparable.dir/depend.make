# Empty dependencies file for reddit_comparable.
# This may be replaced when dependencies are built.
