# Empty compiler generated dependencies file for graph_attention.
# This may be replaced when dependencies are built.
