file(REMOVE_RECURSE
  "CMakeFiles/graph_attention.dir/graph_attention.cpp.o"
  "CMakeFiles/graph_attention.dir/graph_attention.cpp.o.d"
  "graph_attention"
  "graph_attention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
