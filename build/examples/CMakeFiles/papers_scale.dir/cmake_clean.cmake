file(REMOVE_RECURSE
  "CMakeFiles/papers_scale.dir/papers_scale.cpp.o"
  "CMakeFiles/papers_scale.dir/papers_scale.cpp.o.d"
  "papers_scale"
  "papers_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papers_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
