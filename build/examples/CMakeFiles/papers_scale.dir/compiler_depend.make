# Empty compiler generated dependencies file for papers_scale.
# This may be replaced when dependencies are built.
