
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/checkpoint.cpp" "src/core/CMakeFiles/mggcn_core.dir/checkpoint.cpp.o" "gcc" "src/core/CMakeFiles/mggcn_core.dir/checkpoint.cpp.o.d"
  "/root/repo/src/core/dist_spmm.cpp" "src/core/CMakeFiles/mggcn_core.dir/dist_spmm.cpp.o" "gcc" "src/core/CMakeFiles/mggcn_core.dir/dist_spmm.cpp.o.d"
  "/root/repo/src/core/dist_spmm_15d.cpp" "src/core/CMakeFiles/mggcn_core.dir/dist_spmm_15d.cpp.o" "gcc" "src/core/CMakeFiles/mggcn_core.dir/dist_spmm_15d.cpp.o.d"
  "/root/repo/src/core/gat_layer.cpp" "src/core/CMakeFiles/mggcn_core.dir/gat_layer.cpp.o" "gcc" "src/core/CMakeFiles/mggcn_core.dir/gat_layer.cpp.o.d"
  "/root/repo/src/core/gcn_kernels.cpp" "src/core/CMakeFiles/mggcn_core.dir/gcn_kernels.cpp.o" "gcc" "src/core/CMakeFiles/mggcn_core.dir/gcn_kernels.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/core/CMakeFiles/mggcn_core.dir/partition.cpp.o" "gcc" "src/core/CMakeFiles/mggcn_core.dir/partition.cpp.o.d"
  "/root/repo/src/core/reference.cpp" "src/core/CMakeFiles/mggcn_core.dir/reference.cpp.o" "gcc" "src/core/CMakeFiles/mggcn_core.dir/reference.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/core/CMakeFiles/mggcn_core.dir/trainer.cpp.o" "gcc" "src/core/CMakeFiles/mggcn_core.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/comm/CMakeFiles/mggcn_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/dense/CMakeFiles/mggcn_dense.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mggcn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mggcn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/mggcn_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mggcn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
