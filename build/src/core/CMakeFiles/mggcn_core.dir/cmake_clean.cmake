file(REMOVE_RECURSE
  "CMakeFiles/mggcn_core.dir/checkpoint.cpp.o"
  "CMakeFiles/mggcn_core.dir/checkpoint.cpp.o.d"
  "CMakeFiles/mggcn_core.dir/dist_spmm.cpp.o"
  "CMakeFiles/mggcn_core.dir/dist_spmm.cpp.o.d"
  "CMakeFiles/mggcn_core.dir/dist_spmm_15d.cpp.o"
  "CMakeFiles/mggcn_core.dir/dist_spmm_15d.cpp.o.d"
  "CMakeFiles/mggcn_core.dir/gat_layer.cpp.o"
  "CMakeFiles/mggcn_core.dir/gat_layer.cpp.o.d"
  "CMakeFiles/mggcn_core.dir/gcn_kernels.cpp.o"
  "CMakeFiles/mggcn_core.dir/gcn_kernels.cpp.o.d"
  "CMakeFiles/mggcn_core.dir/partition.cpp.o"
  "CMakeFiles/mggcn_core.dir/partition.cpp.o.d"
  "CMakeFiles/mggcn_core.dir/reference.cpp.o"
  "CMakeFiles/mggcn_core.dir/reference.cpp.o.d"
  "CMakeFiles/mggcn_core.dir/trainer.cpp.o"
  "CMakeFiles/mggcn_core.dir/trainer.cpp.o.d"
  "libmggcn_core.a"
  "libmggcn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mggcn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
