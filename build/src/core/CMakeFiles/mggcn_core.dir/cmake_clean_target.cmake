file(REMOVE_RECURSE
  "libmggcn_core.a"
)
