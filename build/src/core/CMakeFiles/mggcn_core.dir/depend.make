# Empty dependencies file for mggcn_core.
# This may be replaced when dependencies are built.
