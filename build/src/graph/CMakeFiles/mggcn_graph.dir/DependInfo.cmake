
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/datasets.cpp" "src/graph/CMakeFiles/mggcn_graph.dir/datasets.cpp.o" "gcc" "src/graph/CMakeFiles/mggcn_graph.dir/datasets.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/mggcn_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/mggcn_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/sampling.cpp" "src/graph/CMakeFiles/mggcn_graph.dir/sampling.cpp.o" "gcc" "src/graph/CMakeFiles/mggcn_graph.dir/sampling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/mggcn_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/dense/CMakeFiles/mggcn_dense.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mggcn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mggcn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
