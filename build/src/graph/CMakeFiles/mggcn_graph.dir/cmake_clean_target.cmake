file(REMOVE_RECURSE
  "libmggcn_graph.a"
)
