file(REMOVE_RECURSE
  "CMakeFiles/mggcn_graph.dir/datasets.cpp.o"
  "CMakeFiles/mggcn_graph.dir/datasets.cpp.o.d"
  "CMakeFiles/mggcn_graph.dir/generators.cpp.o"
  "CMakeFiles/mggcn_graph.dir/generators.cpp.o.d"
  "CMakeFiles/mggcn_graph.dir/sampling.cpp.o"
  "CMakeFiles/mggcn_graph.dir/sampling.cpp.o.d"
  "libmggcn_graph.a"
  "libmggcn_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mggcn_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
