# Empty compiler generated dependencies file for mggcn_graph.
# This may be replaced when dependencies are built.
