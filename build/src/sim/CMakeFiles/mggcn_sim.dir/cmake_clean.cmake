file(REMOVE_RECURSE
  "CMakeFiles/mggcn_sim.dir/cost_model.cpp.o"
  "CMakeFiles/mggcn_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/mggcn_sim.dir/device.cpp.o"
  "CMakeFiles/mggcn_sim.dir/device.cpp.o.d"
  "CMakeFiles/mggcn_sim.dir/machine.cpp.o"
  "CMakeFiles/mggcn_sim.dir/machine.cpp.o.d"
  "CMakeFiles/mggcn_sim.dir/profile.cpp.o"
  "CMakeFiles/mggcn_sim.dir/profile.cpp.o.d"
  "CMakeFiles/mggcn_sim.dir/trace.cpp.o"
  "CMakeFiles/mggcn_sim.dir/trace.cpp.o.d"
  "libmggcn_sim.a"
  "libmggcn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mggcn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
