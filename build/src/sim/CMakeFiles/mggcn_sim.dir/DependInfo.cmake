
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cost_model.cpp" "src/sim/CMakeFiles/mggcn_sim.dir/cost_model.cpp.o" "gcc" "src/sim/CMakeFiles/mggcn_sim.dir/cost_model.cpp.o.d"
  "/root/repo/src/sim/device.cpp" "src/sim/CMakeFiles/mggcn_sim.dir/device.cpp.o" "gcc" "src/sim/CMakeFiles/mggcn_sim.dir/device.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/mggcn_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/mggcn_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/profile.cpp" "src/sim/CMakeFiles/mggcn_sim.dir/profile.cpp.o" "gcc" "src/sim/CMakeFiles/mggcn_sim.dir/profile.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/mggcn_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/mggcn_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mggcn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
