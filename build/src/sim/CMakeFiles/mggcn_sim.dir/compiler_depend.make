# Empty compiler generated dependencies file for mggcn_sim.
# This may be replaced when dependencies are built.
