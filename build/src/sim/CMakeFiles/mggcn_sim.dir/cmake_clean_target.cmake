file(REMOVE_RECURSE
  "libmggcn_sim.a"
)
