file(REMOVE_RECURSE
  "libmggcn_comm.a"
)
