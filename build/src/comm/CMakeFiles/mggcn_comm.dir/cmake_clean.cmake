file(REMOVE_RECURSE
  "CMakeFiles/mggcn_comm.dir/communicator.cpp.o"
  "CMakeFiles/mggcn_comm.dir/communicator.cpp.o.d"
  "CMakeFiles/mggcn_comm.dir/topology.cpp.o"
  "CMakeFiles/mggcn_comm.dir/topology.cpp.o.d"
  "libmggcn_comm.a"
  "libmggcn_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mggcn_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
