# Empty compiler generated dependencies file for mggcn_comm.
# This may be replaced when dependencies are built.
