file(REMOVE_RECURSE
  "CMakeFiles/mggcn_sparse.dir/coo.cpp.o"
  "CMakeFiles/mggcn_sparse.dir/coo.cpp.o.d"
  "CMakeFiles/mggcn_sparse.dir/csr.cpp.o"
  "CMakeFiles/mggcn_sparse.dir/csr.cpp.o.d"
  "CMakeFiles/mggcn_sparse.dir/io.cpp.o"
  "CMakeFiles/mggcn_sparse.dir/io.cpp.o.d"
  "CMakeFiles/mggcn_sparse.dir/sddmm.cpp.o"
  "CMakeFiles/mggcn_sparse.dir/sddmm.cpp.o.d"
  "CMakeFiles/mggcn_sparse.dir/spmm.cpp.o"
  "CMakeFiles/mggcn_sparse.dir/spmm.cpp.o.d"
  "libmggcn_sparse.a"
  "libmggcn_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mggcn_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
