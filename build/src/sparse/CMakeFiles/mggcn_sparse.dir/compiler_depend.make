# Empty compiler generated dependencies file for mggcn_sparse.
# This may be replaced when dependencies are built.
