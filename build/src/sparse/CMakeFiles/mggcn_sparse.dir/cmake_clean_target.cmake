file(REMOVE_RECURSE
  "libmggcn_sparse.a"
)
