
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/coo.cpp" "src/sparse/CMakeFiles/mggcn_sparse.dir/coo.cpp.o" "gcc" "src/sparse/CMakeFiles/mggcn_sparse.dir/coo.cpp.o.d"
  "/root/repo/src/sparse/csr.cpp" "src/sparse/CMakeFiles/mggcn_sparse.dir/csr.cpp.o" "gcc" "src/sparse/CMakeFiles/mggcn_sparse.dir/csr.cpp.o.d"
  "/root/repo/src/sparse/io.cpp" "src/sparse/CMakeFiles/mggcn_sparse.dir/io.cpp.o" "gcc" "src/sparse/CMakeFiles/mggcn_sparse.dir/io.cpp.o.d"
  "/root/repo/src/sparse/sddmm.cpp" "src/sparse/CMakeFiles/mggcn_sparse.dir/sddmm.cpp.o" "gcc" "src/sparse/CMakeFiles/mggcn_sparse.dir/sddmm.cpp.o.d"
  "/root/repo/src/sparse/spmm.cpp" "src/sparse/CMakeFiles/mggcn_sparse.dir/spmm.cpp.o" "gcc" "src/sparse/CMakeFiles/mggcn_sparse.dir/spmm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dense/CMakeFiles/mggcn_dense.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mggcn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mggcn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
