file(REMOVE_RECURSE
  "CMakeFiles/mggcn_dense.dir/kernels.cpp.o"
  "CMakeFiles/mggcn_dense.dir/kernels.cpp.o.d"
  "libmggcn_dense.a"
  "libmggcn_dense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mggcn_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
