# Empty dependencies file for mggcn_dense.
# This may be replaced when dependencies are built.
