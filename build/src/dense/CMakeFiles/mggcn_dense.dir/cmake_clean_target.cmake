file(REMOVE_RECURSE
  "libmggcn_dense.a"
)
