file(REMOVE_RECURSE
  "CMakeFiles/mggcn_baselines.dir/cagnet.cpp.o"
  "CMakeFiles/mggcn_baselines.dir/cagnet.cpp.o.d"
  "CMakeFiles/mggcn_baselines.dir/dgl_like.cpp.o"
  "CMakeFiles/mggcn_baselines.dir/dgl_like.cpp.o.d"
  "CMakeFiles/mggcn_baselines.dir/distgnn.cpp.o"
  "CMakeFiles/mggcn_baselines.dir/distgnn.cpp.o.d"
  "CMakeFiles/mggcn_baselines.dir/minibatch.cpp.o"
  "CMakeFiles/mggcn_baselines.dir/minibatch.cpp.o.d"
  "libmggcn_baselines.a"
  "libmggcn_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mggcn_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
