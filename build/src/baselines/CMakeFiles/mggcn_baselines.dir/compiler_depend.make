# Empty compiler generated dependencies file for mggcn_baselines.
# This may be replaced when dependencies are built.
