file(REMOVE_RECURSE
  "libmggcn_baselines.a"
)
