file(REMOVE_RECURSE
  "libmggcn_util.a"
)
