# Empty dependencies file for mggcn_util.
# This may be replaced when dependencies are built.
