file(REMOVE_RECURSE
  "CMakeFiles/mggcn_util.dir/cli.cpp.o"
  "CMakeFiles/mggcn_util.dir/cli.cpp.o.d"
  "CMakeFiles/mggcn_util.dir/logging.cpp.o"
  "CMakeFiles/mggcn_util.dir/logging.cpp.o.d"
  "CMakeFiles/mggcn_util.dir/table.cpp.o"
  "CMakeFiles/mggcn_util.dir/table.cpp.o.d"
  "libmggcn_util.a"
  "libmggcn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mggcn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
